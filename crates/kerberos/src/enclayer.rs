//! The encryption layer, separated from the protocol per the paper's
//! recommendation (d): "Mechanisms such as random initial vectors (in
//! place of confounders), block chaining and message authentication codes
//! should be left to a separate encryption layer, whose
//! information-hiding requirements are clearly explicated."
//!
//! Three layers model the three eras:
//!
//! - [`EncLayer::V4Pcbc`] — Kerberos V4: PCBC mode, IV = the key itself
//!   (fixed and effectively public), integrity "by garbling" only.
//!   Vulnerable to block-swap message-stream modification (A8).
//! - [`EncLayer::V5Cbc`] — V5 Draft CBC with a fixed zero IV and an
//!   optional random confounder, no MAC. Retains CBC's prefix property,
//!   the lever for the inter-session chosen-plaintext attack (A7).
//! - [`EncLayer::HardenedCbc`] — the paper's recommendation: CBC with a
//!   caller-managed per-message IV, an explicit length, and a
//!   collision-proof keyed MAC over IV and plaintext.

use crate::encoding::len_u32;
use crate::error::KrbError;
use krb_crypto::checksum::{self, ChecksumType};
use krb_crypto::des::{self, DesKey, ScheduledKey};
use krb_crypto::modes;
use krb_crypto::rng::RandomSource;

/// A sealing/opening discipline for encrypted message parts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncLayer {
    /// V4: PCBC, IV = key, leading length word.
    V4Pcbc,
    /// V5 draft: CBC, zero IV, optional confounder, data-first layout,
    /// no integrity.
    V5Cbc {
        /// Whether to prepend a random confounder block.
        confounder: bool,
    },
    /// Hardened: CBC with explicit IV, length framing, MD4+DES MAC.
    HardenedCbc,
}

impl EncLayer {
    /// Whether tampering with a sealed message is detected by
    /// [`EncLayer::open`].
    pub fn provides_integrity(self) -> bool {
        matches!(self, EncLayer::HardenedCbc)
    }

    /// Whether a block-aligned ciphertext prefix decrypts to a plaintext
    /// prefix (the chosen-plaintext splice lever).
    pub fn has_prefix_property(self) -> bool {
        matches!(self, EncLayer::V5Cbc { .. })
    }

    /// Seals `plaintext` under `key`. `iv` is honored only by the
    /// hardened layer; V4 uses the key as IV and V5 uses zero — both
    /// historical choices the paper criticizes.
    ///
    /// Routes through the thread-local schedule cache; hot paths that
    /// already hold a [`ScheduledKey`] should call [`EncLayer::seal_with`].
    pub fn seal(
        self,
        key: &DesKey,
        iv: u64,
        plaintext: &[u8],
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        des::with_scheduled(key, |sk| self.seal_with(sk, iv, plaintext, rng))
    }

    /// Seals `plaintext` with a precomputed schedule: one buffer is
    /// framed, padded, and encrypted in place. Byte-identical to
    /// [`EncLayer::seal`].
    pub fn seal_with(
        self,
        key: &ScheduledKey,
        iv: u64,
        plaintext: &[u8],
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        match self {
            EncLayer::V4Pcbc => {
                let mut buf = Vec::with_capacity(plaintext.len() + 12);
                buf.extend_from_slice(&len_u32(plaintext.len()).to_be_bytes());
                buf.extend_from_slice(plaintext);
                buf.resize(buf.len().next_multiple_of(8), 0);
                modes::pcbc_encrypt_in_place(key.schedule(), key.key().to_u64(), &mut buf)?;
                Ok(buf)
            }
            EncLayer::V5Cbc { confounder } => {
                let mut buf = Vec::with_capacity(plaintext.len() + 16);
                if confounder {
                    buf.extend_from_slice(&rng.next_u64().to_be_bytes());
                }
                buf.extend_from_slice(plaintext);
                buf.resize(buf.len().next_multiple_of(8), 0);
                modes::cbc_encrypt_in_place(key.schedule(), 0, &mut buf)?;
                Ok(buf)
            }
            EncLayer::HardenedCbc => {
                // MAC over IV and plaintext, with a key variant, so
                // splices, truncations, and cross-IV replays all fail.
                // The buffer is laid out as IV ‖ padded plaintext so the
                // MAC input needs no second copy; the IV prefix is
                // dropped after the in-place encryption.
                let mut buf = Vec::with_capacity(plaintext.len() + 24);
                buf.extend_from_slice(&iv.to_be_bytes());
                buf.extend_from_slice(&len_u32(plaintext.len()).to_be_bytes());
                buf.extend_from_slice(plaintext);
                buf.resize(buf.len().next_multiple_of(8), 0);
                let mac = checksum::compute(ChecksumType::Md4Des, Some(key.key()), &buf)?;
                modes::cbc_encrypt_in_place(key.schedule(), iv, &mut buf[8..])?;
                buf.drain(..8);
                buf.extend_from_slice(&mac.value);
                Ok(buf)
            }
        }
    }

    /// Opens a sealed message. For the layers without integrity this
    /// returns whatever the bytes decrypt to — garbage in, garbage out,
    /// exactly as in 1991.
    pub fn open(self, key: &DesKey, iv: u64, ciphertext: &[u8]) -> Result<Vec<u8>, KrbError> {
        des::with_scheduled(key, |sk| self.open_with(sk, iv, ciphertext))
    }

    /// Opens a sealed message with a precomputed schedule: the
    /// ciphertext is copied once and decrypted in place.
    pub fn open_with(
        self,
        key: &ScheduledKey,
        iv: u64,
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, KrbError> {
        let mut buf = Vec::with_capacity(ciphertext.len());
        self.open_into(key, iv, ciphertext, &mut buf)?;
        Ok(buf)
    }

    /// Opens a sealed message into a caller-owned scratch buffer, which
    /// is cleared first and holds exactly the plaintext on success.
    /// Batch processors keep one buffer warm across thousands of opens
    /// instead of allocating per message; the plaintext bytes are
    /// identical to [`EncLayer::open_with`].
    pub fn open_into(
        self,
        key: &ScheduledKey,
        iv: u64,
        ciphertext: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<(), KrbError> {
        buf.clear();
        match self {
            EncLayer::V4Pcbc => {
                buf.extend_from_slice(ciphertext);
                modes::pcbc_decrypt_in_place(key.schedule(), key.key().to_u64(), buf)?;
                if buf.len() < 4 {
                    return Err(KrbError::Decode("V4 sealed part too short"));
                }
                let len = u32::from_be_bytes(crate::encoding::be_array::<4>(&buf[..4])) as usize;
                if 4 + len > buf.len() {
                    return Err(KrbError::Decode("V4 length field out of range"));
                }
                buf.truncate(4 + len);
                buf.drain(..4);
                Ok(())
            }
            EncLayer::V5Cbc { confounder } => {
                buf.extend_from_slice(ciphertext);
                modes::cbc_decrypt_in_place(key.schedule(), 0, buf)?;
                let skip = if confounder { 8 } else { 0 };
                if buf.len() < skip {
                    return Err(KrbError::Decode("V5 sealed part too short"));
                }
                // No integrity, no framing: the caller parses from the
                // front and tolerates trailing padding.
                buf.drain(..skip);
                Ok(())
            }
            EncLayer::HardenedCbc => {
                if ciphertext.len() < 16 {
                    return Err(KrbError::Decode("hardened sealed part too short"));
                }
                let (ct, mac_bytes) = ciphertext.split_at(ciphertext.len() - 16);
                // Decrypt into an IV-prefixed buffer so the MAC input is
                // already contiguous.
                buf.extend_from_slice(&iv.to_be_bytes());
                buf.extend_from_slice(ct);
                modes::cbc_decrypt_in_place(key.schedule(), iv, &mut buf[8..])?;
                // Recompute and compare in place rather than building a
                // `Checksum` around a copied MAC: the comparison is the
                // same constant-time one `checksum::verify` uses, minus
                // the per-open `to_vec`.
                let recomputed = checksum::compute(ChecksumType::Md4Des, Some(key.key()), buf)
                    .map_err(|_| KrbError::IntegrityFailure)?;
                if !recomputed.value.ct_eq(mac_bytes) {
                    return Err(KrbError::IntegrityFailure);
                }
                if buf.len() < 12 {
                    return Err(KrbError::Decode("hardened sealed part too short"));
                }
                let len = u32::from_be_bytes(crate::encoding::be_array::<4>(&buf[8..12])) as usize;
                if 12 + len > buf.len() {
                    return Err(KrbError::Decode("hardened length out of range"));
                }
                buf.truncate(12 + len);
                buf.drain(..12);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::rng::Drbg;

    fn key() -> DesKey {
        DesKey::from_u64(0x0123456789ABCDEF).with_odd_parity()
    }

    #[test]
    fn all_layers_roundtrip() {
        let mut rng = Drbg::new(1);
        for layer in [
            EncLayer::V4Pcbc,
            EncLayer::V5Cbc { confounder: false },
            EncLayer::V5Cbc { confounder: true },
            EncLayer::HardenedCbc,
        ] {
            for msg in [&b""[..], b"x", b"a ticket-sized message of some length........"] {
                let ct = layer.seal(&key(), 42, msg, &mut rng).unwrap();
                let pt = layer.open(&key(), 42, &ct).unwrap();
                // V5Cbc returns trailing padding; compare prefixes.
                assert!(pt.starts_with(msg), "layer {layer:?}");
            }
        }
    }

    #[test]
    fn v4_strips_padding_exactly() {
        let mut rng = Drbg::new(2);
        let msg = b"odd-length payload!";
        let ct = EncLayer::V4Pcbc.seal(&key(), 0, msg, &mut rng).unwrap();
        assert_eq!(EncLayer::V4Pcbc.open(&key(), 0, &ct).unwrap(), msg);
    }

    #[test]
    fn hardened_detects_any_bit_flip() {
        let mut rng = Drbg::new(3);
        let msg = b"KRB_PRIV: transfer $100 to account 7";
        let ct = EncLayer::HardenedCbc.seal(&key(), 7, msg, &mut rng).unwrap();
        for i in 0..ct.len() {
            let mut t = ct.clone();
            t[i] ^= 0x01;
            assert!(EncLayer::HardenedCbc.open(&key(), 7, &t).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn hardened_binds_iv() {
        // Replaying a sealed message under a different session IV fails:
        // the cross-stream replay defense.
        let mut rng = Drbg::new(4);
        let ct = EncLayer::HardenedCbc.seal(&key(), 1, b"message", &mut rng).unwrap();
        assert!(EncLayer::HardenedCbc.open(&key(), 1, &ct).is_ok());
        assert!(EncLayer::HardenedCbc.open(&key(), 2, &ct).is_err());
    }

    #[test]
    fn v5_prefix_splice_succeeds() {
        // The A7 lever in miniature: a block-aligned prefix of a sealed
        // V5 message opens cleanly as a shorter message.
        let mut rng = Drbg::new(5);
        let layer = EncLayer::V5Cbc { confounder: false };
        let msg = b"AUTHENTICATORCHKSUMremainder-the-attacker-wants-dropped";
        let ct = layer.seal(&key(), 0, msg, &mut rng).unwrap();
        let prefix_ct = &ct[..24];
        let pt = layer.open(&key(), 0, prefix_ct).unwrap();
        assert_eq!(&pt[..], &msg[..24]);
        assert!(layer.has_prefix_property());
    }

    #[test]
    fn v4_leading_length_disrupts_prefix_splice() {
        // The paper notes V4's leading length field breaks the simple
        // prefix attack: a truncated ciphertext decrypts to a length
        // that no longer fits (PCBC also garbles, but the length check
        // alone suffices here).
        let mut rng = Drbg::new(6);
        let msg = b"AUTHENTICATORCHKSUMremainder-the-attacker-wants-dropped";
        let ct = EncLayer::V4Pcbc.seal(&key(), 0, msg, &mut rng).unwrap();
        let prefix_ct = &ct[..24];
        assert!(EncLayer::V4Pcbc.open(&key(), 0, prefix_ct).is_err());
    }

    #[test]
    fn v4_block_swap_undetected() {
        // A8: PCBC "integrity" misses a block swap in the middle of a
        // long message — open() succeeds and returns modified data.
        let mut rng = Drbg::new(7);
        let msg = vec![b'M'; 64];
        let mut ct = EncLayer::V4Pcbc.seal(&key(), 0, &msg, &mut rng).unwrap();
        // Swap blocks 3 and 4 (well past the length word, well before
        // the end).
        let (a, b) = (24usize, 32usize);
        let tmp: Vec<u8> = ct[a..a + 8].to_vec();
        let tmp2: Vec<u8> = ct[b..b + 8].to_vec();
        ct[a..a + 8].copy_from_slice(&tmp2);
        ct[b..b + 8].copy_from_slice(&tmp);
        let opened = EncLayer::V4Pcbc.open(&key(), 0, &ct).unwrap();
        assert_ne!(opened, msg, "modification went through undetected");
    }

    #[test]
    fn confounder_randomizes_equal_messages() {
        let mut rng = Drbg::new(8);
        let layer = EncLayer::V5Cbc { confounder: true };
        let a = layer.seal(&key(), 0, b"same", &mut rng).unwrap();
        let b = layer.seal(&key(), 0, b"same", &mut rng).unwrap();
        assert_ne!(a, b);
        // Without the confounder (and with the fixed IV), equal
        // plaintexts leak equality — the reason confounders existed.
        let bare = EncLayer::V5Cbc { confounder: false };
        let c = bare.seal(&key(), 0, b"same", &mut rng).unwrap();
        let d = bare.seal(&key(), 0, b"same", &mut rng).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn open_wrong_key_fails_or_garbles() {
        let mut rng = Drbg::new(9);
        let other = DesKey::from_u64(0x1111111111111111).with_odd_parity();
        let msg = b"sensitive";
        let ct = EncLayer::HardenedCbc.seal(&key(), 3, msg, &mut rng).unwrap();
        assert!(EncLayer::HardenedCbc.open(&other, 3, &ct).is_err());
    }

    #[test]
    fn scheduled_and_cached_paths_agree() {
        let sk = ScheduledKey::new(key());
        for layer in [
            EncLayer::V4Pcbc,
            EncLayer::V5Cbc { confounder: false },
            EncLayer::V5Cbc { confounder: true },
            EncLayer::HardenedCbc,
        ] {
            let msg = b"the scheduled path must be byte-identical";
            let mut rng1 = Drbg::new(77);
            let mut rng2 = Drbg::new(77);
            let a = layer.seal(&key(), 9, msg, &mut rng1).unwrap();
            let b = layer.seal_with(&sk, 9, msg, &mut rng2).unwrap();
            assert_eq!(a, b, "layer {layer:?}");
            let pa = layer.open(&key(), 9, &a).unwrap();
            let pb = layer.open_with(&sk, 9, &b).unwrap();
            assert_eq!(pa, pb, "layer {layer:?}");
            assert!(pa.starts_with(msg));
        }
    }

    #[test]
    fn open_into_reuses_buffer_and_agrees() {
        let sk = ScheduledKey::new(key());
        let mut scratch = Vec::new();
        for layer in [
            EncLayer::V4Pcbc,
            EncLayer::V5Cbc { confounder: false },
            EncLayer::V5Cbc { confounder: true },
            EncLayer::HardenedCbc,
        ] {
            let mut rng = Drbg::new(88);
            for msg in [&b""[..], b"short", b"a longer message spanning several DES blocks...."] {
                let ct = layer.seal_with(&sk, 5, msg, &mut rng).unwrap();
                let owned = layer.open_with(&sk, 5, &ct).unwrap();
                // The same scratch buffer serves every open.
                layer.open_into(&sk, 5, &ct, &mut scratch).unwrap();
                assert_eq!(scratch, owned, "layer {layer:?}");
            }
            // Errors still surface through the scratch path.
            assert!(layer.open_into(&sk, 5, &[0u8; 3], &mut scratch).is_err());
        }
    }

    #[test]
    fn integrity_classification() {
        assert!(!EncLayer::V4Pcbc.provides_integrity());
        assert!(!EncLayer::V5Cbc { confounder: true }.provides_integrity());
        assert!(EncLayer::HardenedCbc.provides_integrity());
    }
}
