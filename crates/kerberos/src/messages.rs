//! The protocol messages: AS, TGS, and AP exchanges plus the error
//! reply.
//!
//! Every message carries a one-byte *cleartext* kind for dispatch (V4
//! had this too); the security-relevant typing — the message type inside
//! the encrypted data — is provided only by [`Codec::Typed`].

use crate::authenticator::{checksum_from_tag, checksum_tag};
use crate::encoding::{len_u32, Codec, Decoder, Encoder, MsgType};
use crate::error::KrbError;
use crate::flags::KdcOptions;
use crate::principal::Principal;
use crate::ticket::{put_principal, take_principal};
use krb_crypto::checksum::Checksum;
use krb_crypto::des::DesKey;

/// Cleartext message kind (dispatch only; no security relied on it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum WireKind {
    /// Initial authentication request.
    AsReq = 1,
    /// Initial authentication reply.
    AsRep = 2,
    /// Ticket-granting request.
    TgsReq = 3,
    /// Ticket-granting reply.
    TgsRep = 4,
    /// Application request.
    ApReq = 5,
    /// Application (mutual-auth) reply.
    ApRep = 6,
    /// Error.
    Err = 7,
    /// Integrity-protected message.
    Safe = 8,
    /// Encrypted message.
    Priv = 9,
    /// The client's answer to an application challenge.
    ChallengeResp = 10,
    /// Plain (unprotected) application data after authentication — the
    /// common 1990 deployment style that makes hijacking (A14) trivial.
    AppData = 11,
}

impl WireKind {
    /// Parses a kind byte.
    pub fn from_u8(v: u8) -> Option<WireKind> {
        use WireKind::*;
        Some(match v {
            1 => AsReq,
            2 => AsRep,
            3 => TgsReq,
            4 => TgsRep,
            5 => ApReq,
            6 => ApRep,
            7 => Err,
            8 => Safe,
            9 => Priv,
            10 => ChallengeResp,
            11 => AppData,
            _ => return None,
        })
    }
}

/// Prefixes a body with its wire kind.
pub fn frame(kind: WireKind, body: Vec<u8>) -> Vec<u8> {
    let mut v = Vec::with_capacity(body.len() + 1);
    v.push(kind as u8);
    v.extend_from_slice(&body);
    v
}

/// Splits a framed message into kind and body.
pub fn deframe(data: &[u8]) -> Result<(WireKind, &[u8]), KrbError> {
    let (&k, body) = data.split_first().ok_or(KrbError::Decode("empty message"))?;
    Ok((WireKind::from_u8(k).ok_or(KrbError::Decode("unknown wire kind"))?, body))
}

/// Preauthentication / extension data carried in an AS request — the
/// `padata` extension point Draft 3 added.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PaData {
    /// `{client local time}K_c`: proves knowledge of the password key
    /// before the KDC releases anything encrypted in it. Tag 1.
    EncTimestamp(Vec<u8>),
    /// The client's exponential-key-exchange public value. Tag 2.
    DhPublic(Vec<u8>),
    /// A pa-data type this implementation does not know, carried
    /// opaquely (tag, value). Only [`Codec::Wire`] decodes these —
    /// under the older codecs an unknown tag is a reject. Tags 1 and 2
    /// always decode to their known variants, so round-tripping an
    /// `Unknown` requires a tag ≥ 3.
    Unknown(u8, Vec<u8>),
}

impl PaData {
    /// The tag byte this entry carries on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            PaData::EncTimestamp(_) => 1,
            PaData::DhPublic(_) => 2,
            PaData::Unknown(t, _) => *t,
        }
    }

    fn encode_into(&self, e: &mut Encoder) {
        match self {
            PaData::EncTimestamp(b) | PaData::DhPublic(b) | PaData::Unknown(_, b) => {
                e.put_u8(self.tag()).put_bytes(b);
            }
        }
    }

    fn decode_from(d: &mut Decoder<'_>, extensible: bool) -> Result<PaData, KrbError> {
        Ok(match d.take_u8()? {
            1 => PaData::EncTimestamp(d.take_bytes()?),
            2 => PaData::DhPublic(d.take_bytes()?),
            t if extensible => PaData::Unknown(t, d.take_bytes()?),
            _ => return Err(d.fail("unknown padata type")),
        })
    }
}

/// KRB_AS_REQ: the login request. Sent in the clear (when preauth is
/// off, *anyone* can send one for *any* user — attack A5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsReq {
    /// Who is logging in.
    pub client: Principal,
    /// The requested service (normally the realm's TGS).
    pub service: Principal,
    /// Client nonce (Draft 3: challenge/response authentication of the
    /// KDC to the client, replacing dependence on workstation time).
    pub nonce: u64,
    /// Requested ticket lifetime, µs.
    pub lifetime_us: u64,
    /// Claimed client address.
    pub addr: u32,
    /// Requested options (e.g. FORWARDABLE, RENEWABLE).
    pub options: KdcOptions,
    /// Preauthentication / extension data.
    pub padata: Vec<PaData>,
}

impl AsReq {
    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        put_principal(&mut e, &self.client);
        put_principal(&mut e, &self.service);
        e.put_u64(self.nonce).put_u64(self.lifetime_us).put_u32(self.addr);
        e.put_u32(u32::from(self.options.0));
        e.put_u32(len_u32(self.padata.len()));
        for p in &self.padata {
            p.encode_into(&mut e);
        }
        frame(WireKind::AsReq, codec.wrap(MsgType::AsReq, e.finish()))
    }

    /// Parses a framed AS request.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<AsReq, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::AsReq {
            return Err(KrbError::Decode("not an AS request"));
        }
        let body = codec.open(MsgType::AsReq, body)?;
        let mut d = Decoder::new(body);
        let client = take_principal(d.field("client"))?;
        let service = take_principal(d.field("service"))?;
        let nonce = d.field("nonce").take_u64()?;
        let lifetime_us = d.field("lifetime").take_u64()?;
        let addr = d.field("addr").take_u32()?;
        let options = KdcOptions(d.field("options").take_u32()? as u16);
        let n = d.field("padata").take_u32()? as usize;
        if n > 16 {
            return Err(d.fail("too many padata"));
        }
        let mut padata = Vec::with_capacity(n);
        for _ in 0..n {
            padata.push(PaData::decode_from(&mut d, codec.pa_extensible())?);
        }
        Ok(AsReq { client, service, nonce, lifetime_us, addr, options, padata })
    }
}

/// The encrypted part shared by AS and TGS replies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncKdcRepPart {
    /// The new session key.
    pub session_key: DesKey,
    /// Echo of the request nonce (KDC-to-client authentication).
    pub nonce: u64,
    /// The sealed ticket (encrypted in the service key — nested inside
    /// this encrypted part, as in V4).
    pub ticket: Vec<u8>,
    /// Ticket end time, µs.
    pub end_time: u64,
    /// The KDC's clock at issue time, µs.
    pub server_time: u64,
    /// Recommendation (c): a collision-proof checksum of the sealed
    /// ticket, so substitution of a different ticket is detectable.
    pub ticket_cksum: Option<Checksum>,
}

impl EncKdcRepPart {
    /// Serializes (for sealing). `mtype` distinguishes AS from TGS parts
    /// under the typed codec.
    pub fn encode(&self, codec: Codec, mtype: MsgType) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.session_key.to_u64());
        e.put_u64(self.nonce);
        e.put_bytes(&self.ticket);
        e.put_u64(self.end_time).put_u64(self.server_time);
        match &self.ticket_cksum {
            Some(c) => {
                e.put_u8(1).put_u8(checksum_tag(c.ctype)).put_bytes(&c.value);
            }
            None => {
                e.put_u8(0);
            }
        }
        codec.wrap(mtype, e.finish())
    }

    /// Parses a decrypted reply part.
    pub fn decode(codec: Codec, mtype: MsgType, data: &[u8]) -> Result<EncKdcRepPart, KrbError> {
        let body = codec.open(mtype, data)?;
        let mut d = Decoder::new(body);
        let session_key = DesKey::from_u64(d.field("session-key").take_u64()?);
        let nonce = d.field("nonce").take_u64()?;
        let ticket = d.field("ticket").take_bytes()?;
        let end_time = d.field("end-time").take_u64()?;
        let server_time = d.field("server-time").take_u64()?;
        let ticket_cksum = match d.field("ticket-cksum").take_u8()? {
            0 => None,
            1 => {
                let ctype = checksum_from_tag(d.take_u8()?)?;
                Some(Checksum { ctype, value: d.take_bytes()?.into() })
            }
            _ => return Err(d.fail("bad cksum option")),
        };
        Ok(EncKdcRepPart { session_key, nonce, ticket, end_time, server_time, ticket_cksum })
    }
}

/// KRB_AS_REP.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsRep {
    /// Handheld-authenticator challenge `R`, in the clear; when present
    /// the encrypted part is sealed under `{R}K_c` instead of `K_c`.
    pub challenge_r: Option<u64>,
    /// The KDC's exponential-key-exchange public value, when the DH
    /// layer is active.
    pub dh_public: Option<Vec<u8>>,
    /// The sealed [`EncKdcRepPart`].
    pub enc_part: Vec<u8>,
}

impl AsRep {
    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_opt_u64(self.challenge_r);
        e.put_opt_bytes(self.dh_public.as_deref());
        e.put_bytes(&self.enc_part);
        frame(WireKind::AsRep, codec.wrap(MsgType::AsRep, e.finish()))
    }

    /// Parses a framed AS reply.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<AsRep, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::AsRep {
            return Err(KrbError::Decode("not an AS reply"));
        }
        let body = codec.open(MsgType::AsRep, body)?;
        let mut d = Decoder::new(body);
        Ok(AsRep {
            challenge_r: d.field("challenge-r").take_opt_u64()?,
            dh_public: d.field("dh-public").take_opt_bytes()?,
            enc_part: d.field("enc-part").take_bytes()?,
        })
    }
}

/// KRB_TGS_REQ. The additional-tickets and authorization-data fields are
/// *outside* any encryption (the Draft 3 change attack A9 leans on),
/// protected only by the checksum sealed in the authenticator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TgsReq {
    /// The sealed ticket-granting ticket.
    pub tgt: Vec<u8>,
    /// The sealed authenticator (under the TGS session key), whose
    /// checksum covers [`TgsReq::checksum_body`].
    pub authenticator: Vec<u8>,
    /// The requested service.
    pub service: Principal,
    /// Request options.
    pub options: KdcOptions,
    /// Client nonce.
    pub nonce: u64,
    /// Requested lifetime, µs.
    pub lifetime_us: u64,
    /// Additional ticket (for ENC-TKT-IN-SKEY / REUSE-SKEY), sealed but
    /// NOT re-encrypted for transit.
    pub additional_ticket: Option<Vec<u8>>,
    /// Free-form authorization data — the attacker's CRC-patching
    /// scratch space in A9.
    pub authz_data: Vec<u8>,
    /// Address to bind a FORWARDED ticket to (the destination host).
    pub forward_addr: Option<u64>,
}

impl TgsReq {
    /// The bytes the authenticator's checksum must cover: everything in
    /// the request outside the encrypted authenticator itself.
    pub fn checksum_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        put_principal(&mut e, &self.service);
        e.put_u32(u32::from(self.options.0));
        e.put_u64(self.nonce).put_u64(self.lifetime_us);
        e.put_opt_bytes(self.additional_ticket.as_deref());
        e.put_opt_u64(self.forward_addr);
        e.put_bytes(&self.authz_data);
        e.finish()
    }

    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(&self.tgt);
        e.put_bytes(&self.authenticator);
        put_principal(&mut e, &self.service);
        e.put_u32(u32::from(self.options.0));
        e.put_u64(self.nonce).put_u64(self.lifetime_us);
        e.put_opt_bytes(self.additional_ticket.as_deref());
        e.put_opt_u64(self.forward_addr);
        e.put_bytes(&self.authz_data);
        frame(WireKind::TgsReq, codec.wrap(MsgType::TgsReq, e.finish()))
    }

    /// Parses a framed TGS request.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<TgsReq, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::TgsReq {
            return Err(KrbError::Decode("not a TGS request"));
        }
        let body = codec.open(MsgType::TgsReq, body)?;
        let mut d = Decoder::new(body);
        let tgt = d.field("tgt").take_bytes()?;
        let authenticator = d.field("authenticator").take_bytes()?;
        let service = take_principal(d.field("service"))?;
        let options = KdcOptions(d.field("options").take_u32()? as u16);
        let nonce = d.field("nonce").take_u64()?;
        let lifetime_us = d.field("lifetime").take_u64()?;
        let additional_ticket = d.field("additional-ticket").take_opt_bytes()?;
        let forward_addr = d.field("forward-addr").take_opt_u64()?;
        let authz_data = d.field("authz-data").take_bytes()?;
        Ok(TgsReq {
            tgt,
            authenticator,
            service,
            options,
            nonce,
            lifetime_us,
            additional_ticket,
            forward_addr,
            authz_data,
        })
    }
}

/// KRB_TGS_REP (same wire shape as an AS reply, different tags).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TgsRep {
    /// The sealed [`EncKdcRepPart`] (under the TGS session key).
    pub enc_part: Vec<u8>,
}

impl TgsRep {
    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(&self.enc_part);
        frame(WireKind::TgsRep, codec.wrap(MsgType::TgsRep, e.finish()))
    }

    /// Parses a framed TGS reply.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<TgsRep, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::TgsRep {
            return Err(KrbError::Decode("not a TGS reply"));
        }
        let body = codec.open(MsgType::TgsRep, body)?;
        let mut d = Decoder::new(body);
        Ok(TgsRep { enc_part: d.field("enc-part").take_bytes()? })
    }
}

/// KRB_AP_REQ: ticket + authenticator presented to an application
/// server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ApReq {
    /// The sealed service ticket.
    pub ticket: Vec<u8>,
    /// The sealed authenticator (under the ticket's session key).
    /// Empty when the challenge/response option is in use — the client
    /// proves key possession interactively instead.
    pub authenticator: Vec<u8>,
    /// Whether the client wants mutual authentication.
    pub mutual: bool,
}

impl ApReq {
    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(&self.ticket);
        e.put_bytes(&self.authenticator);
        e.put_u8(u8::from(self.mutual));
        frame(WireKind::ApReq, codec.wrap(MsgType::ApReq, e.finish()))
    }

    /// Parses a framed AP request.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<ApReq, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::ApReq {
            return Err(KrbError::Decode("not an AP request"));
        }
        let body = codec.open(MsgType::ApReq, body)?;
        let mut d = Decoder::new(body);
        Ok(ApReq {
            ticket: d.field("ticket").take_bytes()?,
            authenticator: d.field("authenticator").take_bytes()?,
            mutual: d.field("mutual").take_u8()? != 0,
        })
    }
}

/// The encrypted part of KRB_AP_REP.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncApRepPart {
    /// `timestamp + 1` (V4 mutual auth) or the nonce echo.
    pub ts_echo: u64,
    /// Server's subkey contribution for session-key negotiation.
    pub subkey: Option<u64>,
    /// Server's initial sequence number.
    pub seq_init: Option<u64>,
}

impl EncApRepPart {
    /// Serializes (for sealing).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.ts_echo);
        e.put_opt_u64(self.subkey);
        e.put_opt_u64(self.seq_init);
        codec.wrap(MsgType::EncApRepPart, e.finish())
    }

    /// Parses a decrypted AP reply part.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<EncApRepPart, KrbError> {
        let body = codec.open(MsgType::EncApRepPart, data)?;
        let mut d = Decoder::new(body);
        Ok(EncApRepPart {
            ts_echo: d.field("ts-echo").take_u64()?,
            subkey: d.field("subkey").take_opt_u64()?,
            seq_init: d.field("seq-init").take_opt_u64()?,
        })
    }
}

/// KRB_AP_REP.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ApRep {
    /// The sealed [`EncApRepPart`].
    pub enc_part: Vec<u8>,
}

impl ApRep {
    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(&self.enc_part);
        frame(WireKind::ApRep, codec.wrap(MsgType::ApRep, e.finish()))
    }

    /// Parses a framed AP reply.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<ApRep, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::ApRep {
            return Err(KrbError::Decode("not an AP reply"));
        }
        let body = codec.open(MsgType::ApRep, body)?;
        let mut d = Decoder::new(body);
        Ok(ApRep { enc_part: d.field("enc-part").take_bytes()? })
    }
}

/// Error codes in KRB_ERROR.
pub mod err_code {
    /// Generic failure.
    pub const GENERIC: u32 = 1;
    /// Unknown principal.
    pub const UNKNOWN_PRINCIPAL: u32 = 2;
    /// Preauthentication required.
    pub const PREAUTH_REQUIRED: u32 = 3;
    /// Preauthentication failed.
    pub const PREAUTH_FAILED: u32 = 4;
    /// Clock skew too great.
    pub const SKEW: u32 = 5;
    /// Replay detected.
    pub const REPLAY: u32 = 6;
    /// The server demands challenge/response (method data carries the
    /// challenge).
    pub const CHALLENGE_REQUIRED: u32 = 7;
    /// Policy refused the request.
    pub const POLICY: u32 = 8;
    /// Integrity check failed.
    pub const INTEGRITY: u32 = 9;
    /// Rate limit exceeded.
    pub const RATE_LIMITED: u32 = 10;
    /// Transient server condition (e.g. the fail-closed startup window
    /// after a restart): the client should retry with fresh material.
    pub const TRY_LATER: u32 = 11;
    /// The admission tier (gateway) refused the request under load:
    /// rate limit, full queue, or penalty window. The client should
    /// back off and retry; the refusal says nothing about its
    /// credentials or the KDC's state.
    pub const SERVER_BUSY: u32 = 12;
}

/// KRB_ERROR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KrbErrorMsg {
    /// Error code (see [`err_code`]).
    pub code: u32,
    /// Human-readable text.
    pub text: String,
    /// Method data: the challenge nonce for CHALLENGE_REQUIRED (the
    /// `e-data` field of Draft 3's KRB_AP_ERR_METHOD).
    pub challenge: Option<u64>,
}

impl KrbErrorMsg {
    /// Serializes (framed).
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(self.code).put_str(&self.text);
        e.put_opt_u64(self.challenge);
        frame(WireKind::Err, codec.wrap(MsgType::KrbErr, e.finish()))
    }

    /// Parses a framed error.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<KrbErrorMsg, KrbError> {
        let (kind, body) = deframe(data)?;
        if kind != WireKind::Err {
            return Err(KrbError::Decode("not an error message"));
        }
        let body = codec.open(MsgType::KrbErr, body)?;
        let mut d = Decoder::new(body);
        Ok(KrbErrorMsg {
            code: d.field("code").take_u32()?,
            text: d.field("text").take_str()?,
            challenge: d.field("challenge").take_opt_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::checksum::ChecksumType;

    fn codecs() -> [Codec; 3] {
        [Codec::Legacy, Codec::Typed, Codec::Wire]
    }

    #[test]
    fn as_req_roundtrip() {
        for codec in codecs() {
            let m = AsReq {
                client: Principal::user("pat", "ATHENA"),
                service: Principal::tgs("ATHENA"),
                nonce: 0xabcdef,
                lifetime_us: 8 * 3600 * 1_000_000,
                addr: 0x0a000001,
                options: KdcOptions::empty().with(KdcOptions::FORWARDABLE),
                padata: vec![PaData::EncTimestamp(vec![1, 2, 3]), PaData::DhPublic(vec![9; 96])],
            };
            assert_eq!(AsReq::decode(codec, &m.encode(codec)).unwrap(), m);
        }
    }

    #[test]
    fn as_rep_roundtrip() {
        for codec in codecs() {
            let m = AsRep {
                challenge_r: Some(77),
                dh_public: Some(vec![4; 96]),
                enc_part: vec![0xaa; 40],
            };
            assert_eq!(AsRep::decode(codec, &m.encode(codec)).unwrap(), m);
        }
    }

    #[test]
    fn enc_kdc_rep_part_roundtrip() {
        for codec in codecs() {
            let p = EncKdcRepPart {
                session_key: DesKey::from_u64(0x1234),
                nonce: 9,
                ticket: vec![1, 2, 3],
                end_time: 100,
                server_time: 50,
                ticket_cksum: Some(Checksum { ctype: ChecksumType::Md4, value: vec![0; 16].into() }),
            };
            let enc = p.encode(codec, MsgType::EncAsRepPart);
            assert_eq!(EncKdcRepPart::decode(codec, MsgType::EncAsRepPart, &enc).unwrap(), p);
        }
    }

    #[test]
    fn tgs_req_roundtrip_and_checksum_body() {
        for codec in codecs() {
            let m = TgsReq {
                tgt: vec![1; 16],
                authenticator: vec![2; 24],
                service: Principal::service("nfs", "fs1", "ATHENA"),
                options: KdcOptions::empty().with(KdcOptions::ENC_TKT_IN_SKEY),
                nonce: 5,
                lifetime_us: 1_000_000,
                additional_ticket: Some(vec![3; 16]),
                forward_addr: Some(0x0a000002),
                authz_data: b"authz".to_vec(),
            };
            assert_eq!(TgsReq::decode(codec, &m.encode(codec)).unwrap(), m);
            // The checksum body must change when protected fields change.
            let mut m2 = m.clone();
            m2.options = KdcOptions::empty();
            assert_ne!(m.checksum_body(), m2.checksum_body());
            let mut m3 = m.clone();
            m3.additional_ticket = None;
            assert_ne!(m.checksum_body(), m3.checksum_body());
        }
    }

    #[test]
    fn ap_req_rep_roundtrip() {
        for codec in codecs() {
            let q = ApReq { ticket: vec![7; 8], authenticator: vec![8; 8], mutual: true };
            assert_eq!(ApReq::decode(codec, &q.encode(codec)).unwrap(), q);
            let p = EncApRepPart { ts_echo: 1001, subkey: Some(3), seq_init: None };
            assert_eq!(EncApRepPart::decode(codec, &p.encode(codec)).unwrap(), p);
            let r = ApRep { enc_part: p.encode(codec) };
            assert_eq!(ApRep::decode(codec, &r.encode(codec)).unwrap(), r);
        }
    }

    #[test]
    fn error_roundtrip() {
        for codec in codecs() {
            let e = KrbErrorMsg {
                code: err_code::CHALLENGE_REQUIRED,
                text: "challenge required".into(),
                challenge: Some(0xfeed),
            };
            assert_eq!(KrbErrorMsg::decode(codec, &e.encode(codec)).unwrap(), e);
        }
    }

    #[test]
    fn deframe_rejects_garbage() {
        assert!(deframe(&[]).is_err());
        assert!(deframe(&[200, 1, 2]).is_err());
    }

    #[test]
    fn kind_mismatch_rejected() {
        let m = AsReq {
            client: Principal::user("a", "R"),
            service: Principal::tgs("R"),
            nonce: 0,
            lifetime_us: 0,
            addr: 0,
            options: KdcOptions::empty(),
            padata: vec![],
        };
        let bytes = m.encode(Codec::Typed);
        assert!(TgsReq::decode(Codec::Typed, &bytes).is_err());
    }

    #[test]
    fn unknown_padata_carried_opaquely_under_wire() {
        let m = AsReq {
            client: Principal::user("pat", "ATHENA"),
            service: Principal::tgs("ATHENA"),
            nonce: 1,
            lifetime_us: 2,
            addr: 3,
            options: KdcOptions::empty(),
            padata: vec![PaData::EncTimestamp(vec![1, 2]), PaData::Unknown(0x2a, vec![9, 9, 9])],
        };
        let decoded = AsReq::decode(Codec::Wire, &m.encode(Codec::Wire)).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.padata[1].tag(), 0x2a);
    }

    #[test]
    fn unknown_padata_rejected_under_older_codecs() {
        for codec in [Codec::Legacy, Codec::Typed] {
            let m = AsReq {
                client: Principal::user("pat", "ATHENA"),
                service: Principal::tgs("ATHENA"),
                nonce: 1,
                lifetime_us: 2,
                addr: 3,
                options: KdcOptions::empty(),
                padata: vec![PaData::Unknown(0x2a, vec![9])],
            };
            let err = AsReq::decode(codec, &m.encode(codec)).unwrap_err();
            assert!(
                matches!(err, KrbError::DecodeAt { what: "unknown padata type", .. }),
                "{codec:?}: {err:?}"
            );
        }
    }

    #[test]
    fn truncated_padata_names_the_field() {
        let m = AsReq {
            client: Principal::user("pat", "ATHENA"),
            service: Principal::tgs("ATHENA"),
            nonce: 1,
            lifetime_us: 2,
            addr: 3,
            options: KdcOptions::empty(),
            padata: vec![PaData::DhPublic(vec![7; 32])],
        };
        // Chop into the pa-data value; Legacy has no envelope length so
        // the cut reaches the field decoder.
        let bytes = m.encode(Codec::Legacy);
        let err = AsReq::decode(Codec::Legacy, &bytes[..bytes.len() - 8]).unwrap_err();
        assert!(
            matches!(err, KrbError::DecodeAt { what: "truncated field", field: "padata", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn wirekind_tags_roundtrip() {
        for t in 1u8..=11 {
            assert_eq!(WireKind::from_u8(t).unwrap() as u8, t);
        }
        assert!(WireKind::from_u8(0).is_none());
        assert!(WireKind::from_u8(12).is_none());
    }
}
