//! Client-side protocol workflows: login (AS exchange) and ticket
//! acquisition (TGS exchange).

use crate::authenticator::Authenticator;
use crate::config::{PreauthMode, ProtocolConfig};
use crate::encoding::MsgType;
use crate::error::KrbError;
use crate::flags::KdcOptions;
use crate::kdc::hha_key;
use crate::messages::{
    deframe, err_code, AsRep, AsReq, EncKdcRepPart, KrbErrorMsg, PaData, TgsRep, TgsReq, WireKind,
};
use crate::principal::Principal;
use crate::retry::{self, reply_transient, AttemptErr};
use krb_crypto::checksum;
use krb_crypto::des::DesKey;
use krb_crypto::dh::DhGroup;
use krb_crypto::rng::RandomSource;
use krb_crypto::s2k;
use krb_trace::{EventKind, Value};
use simnet::{Endpoint, Network, SimDuration};

/// How the user authenticates at login.
pub enum LoginInput<'a> {
    /// A typed password: the workstation sees it (the A6 exposure).
    Password(&'a str),
    /// A handheld authenticator: a function computing `{R}K_c` from the
    /// challenge. The password never enters the workstation.
    Handheld(&'a dyn Fn(u64) -> DesKey),
}

/// A credential: a sealed ticket plus its session key.
#[derive(Clone, Debug)]
pub struct Credential {
    /// The client principal.
    pub client: Principal,
    /// The service the ticket is for.
    pub service: Principal,
    /// The sealed ticket, opaque to the client.
    pub sealed_ticket: Vec<u8>,
    /// The session key shared with the service.
    pub session_key: DesKey,
    /// Expiry (KDC clock), µs.
    pub end_time: u64,
}

/// Parses a KDC reply that may be an error message.
fn check_error(config: &ProtocolConfig, reply: &[u8]) -> Result<(), KrbError> {
    if let Ok((WireKind::Err, _)) = deframe(reply) {
        let e = KrbErrorMsg::decode(config.codec, reply)?;
        if e.code == err_code::TRY_LATER {
            // The server is in its fail-closed startup window: an
            // always-retryable condition, not a verdict.
            return Err(KrbError::FailClosed);
        }
        if e.code == err_code::SERVER_BUSY {
            // The admission tier shed this request: back off and retry
            // without burning failover budget.
            return Err(KrbError::ServerBusy);
        }
        return Err(KrbError::Remote(format!("KDC error {}: {}", e.code, e.text)));
    }
    Ok(())
}

/// Performs the AS exchange ("login") from `client_ep` against the KDC at
/// `kdc_ep`. Returns the ticket-granting credential.
#[allow(clippy::too_many_arguments)]
pub fn login(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    kdc_ep: Endpoint,
    client: &Principal,
    input: LoginInput<'_>,
    rng: &mut dyn RandomSource,
) -> Result<Credential, KrbError> {
    login_at(net, config, client_ep, &[kdc_ep], client, input, rng)
}

/// [`login`] with replica failover: walks `kdcs` round-robin across
/// retry attempts (mirroring a real client's krb.conf list of master +
/// slave KDCs), with per-attempt timeouts and exponential backoff from
/// `config.retry`. The nonce is FIXED across attempts — it is what
/// matches a (possibly duplicated or reordered) reply to this exchange —
/// while timestamps, preauth blobs, and DH/HHA material are re-stamped
/// fresh per attempt so a server that already committed an earlier
/// attempt's blob to its replay cache cannot mistake the retry for a
/// replay.
#[allow(clippy::too_many_arguments)]
pub fn login_at(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    kdcs: &[Endpoint],
    client: &Principal,
    input: LoginInput<'_>,
    rng: &mut dyn RandomSource,
) -> Result<Credential, KrbError> {
    assert!(!kdcs.is_empty(), "need at least one KDC endpoint");
    let kc: Option<DesKey> = match &input {
        LoginInput::Password(pw) => Some(s2k::string_to_key_v5(pw, &client.salt())),
        LoginInput::Handheld(_) => None,
    };

    let nonce = rng.next_u64();

    // Exponential key exchange under the login dialog. The keypair is
    // drawn once: like the nonce, it identifies this logical exchange.
    let dh_group = DhGroup::oakley768();
    let dh_keypair = if config.dh_login { Some(dh_group.keypair(160, rng)?) } else { None };

    let timeout = Some(SimDuration(config.retry.timeout_us));
    // Each replica deserves the full per-server budget: a client with N
    // KDCs in its configuration makes N times the attempts, walking the
    // list round-robin.
    let mut policy = config.retry;
    policy.attempts = policy.attempts.saturating_mul(kdcs.len() as u32);
    let trace = net.tracer();
    let span = trace.begin_span(
        "as-exchange",
        net.now().0,
        vec![("client", Value::str(client.to_string()))],
    );
    let result = retry::run(net, &policy, nonce, |net, attempt| {
        let kdc_ep = kdcs[attempt as usize % kdcs.len()];
        let mut padata = Vec::new();
        if let Some(kp) = &dh_keypair {
            padata.push(PaData::DhPublic(kp.public.to_bytes_be()));
        }

        // Handheld-authenticator deployments run a two-round exchange:
        // the first request draws a challenge R; the retry proves
        // possession of {R}K_c via a sealed timestamp (which doubles as
        // preauthentication).
        let mut hha_response_key: Option<DesKey> = None;
        if config.hha_login {
            let probe = AsReq {
                client: client.clone(),
                service: Principal::tgs(&client.realm),
                nonce,
                lifetime_us: config.ticket_lifetime_us,
                addr: client_ep.addr.0,
                options: KdcOptions::empty()
                    .with(KdcOptions::FORWARDABLE)
                    .with(KdcOptions::RENEWABLE),
                padata: padata.clone(),
            };
            let reply = net.rpc_with_timeout(client_ep, kdc_ep, probe.encode(config.codec), timeout)?;
            let err = KrbErrorMsg::decode(config.codec, &reply)
                .map_err(|_| reply_transient(net, KrbError::Remote("expected a login challenge".into())))?;
            if err.code == err_code::SERVER_BUSY {
                // The admission tier shed the probe: back off and retry
                // the whole challenge round.
                return Err(AttemptErr::Busy);
            }
            let r = err
                .challenge
                .ok_or_else(|| reply_transient(net, KrbError::Remote("KDC sent no challenge".into())))?;
            let kprime = match (&input, &kc) {
                (LoginInput::Handheld(device), _) => device(r),
                (LoginInput::Password(_), Some(kc)) => hha_key(kc, r),
                _ => return Err(AttemptErr::Fatal(KrbError::Remote("no way to answer challenge".into()))),
            };
            let now = client_local_time_us(net, client_ep)?;
            let blob = config.ticket_layer.seal(&kprime, 0, &now.to_be_bytes(), rng)?;
            padata.push(PaData::EncTimestamp(blob));
            hha_response_key = Some(kprime);
        } else if config.preauth == PreauthMode::EncTimestamp {
            // Plain preauthentication: {local time}K_c, stamped fresh
            // per attempt.
            if let Some(kc) = &kc {
                let now = client_local_time_us(net, client_ep)?;
                let blob = config.ticket_layer.seal(kc, 0, &now.to_be_bytes(), rng)?;
                padata.push(PaData::EncTimestamp(blob));
            }
        }

        // Athena-style default: request forwardable + renewable TGTs.
        let req = AsReq {
            client: client.clone(),
            service: Principal::tgs(&client.realm),
            nonce,
            lifetime_us: config.ticket_lifetime_us,
            addr: client_ep.addr.0,
            options: KdcOptions::empty().with(KdcOptions::FORWARDABLE).with(KdcOptions::RENEWABLE),
            padata,
        };
        let reply = net.rpc_with_timeout(client_ep, kdc_ep, req.encode(config.codec), timeout)?;
        check_error(config, &reply).map_err(|e| reply_transient(net, e))?;
        let rep = AsRep::decode(config.codec, &reply).map_err(|e| reply_transient(net, e))?;

        // Peel the DH layer if present.
        let inner = if let (Some(kp), Some(server_pub)) = (&dh_keypair, &rep.dh_public) {
            let their = krb_crypto::bignum::BigUint::from_bytes_be(server_pub);
            let secret = dh_group
                .shared_secret(&their, &kp.private)
                .map_err(|e| reply_transient(net, KrbError::from(e)))?;
            let dh_key = DhGroup::derive_key(&secret);
            config
                .ticket_layer
                .open(&dh_key, 0, &rep.enc_part)
                .map_err(|e| reply_transient(net, e))?
        } else if config.dh_login {
            return Err(reply_transient(net, KrbError::Remote("KDC did not complete key exchange".into())));
        } else {
            rep.enc_part.clone()
        };

        // Choose the unsealing key: {R}K_c (already computed during the
        // challenge round) or K_c.
        let unseal_key = match (&hha_response_key, &kc) {
            (Some(k), _) => *k,
            (None, Some(kc)) => *kc,
            (None, None) => {
                return Err(AttemptErr::Fatal(KrbError::Remote(
                    "handheld login needs a challenge from the KDC".into(),
                )))
            }
        };

        let part_bytes = config
            .ticket_layer
            .open(&unseal_key, 0, &inner)
            .map_err(|e| reply_transient(net, e))?;
        let part = EncKdcRepPart::decode(config.codec, MsgType::EncAsRepPart, &part_bytes)
            .map_err(|e| reply_transient(net, e))?;
        // Nonce echo: the KDC proved knowledge of K_c *now* — server-to-
        // client authentication without trusting the workstation clock.
        // Under faults this is also what rejects a stale reply from a
        // different exchange that a duplication or reordering surfaced.
        if part.nonce != nonce {
            return Err(reply_transient(net, KrbError::Remote("AS reply nonce mismatch".into())));
        }

        let tr = net.tracer();
        tr.emit(
            EventKind::TicketDecrypted,
            net.now().0,
            vec![
                ("exchange", Value::str("as")),
                ("client", Value::str(client.to_string())),
                ("key_fpr", Value::str(crate::traceview::fingerprint(&part.session_key))),
            ],
        );
        tr.counter("client.tickets", &client.name, 1);
        Ok(Credential {
            client: client.clone(),
            service: Principal::tgs(&client.realm),
            sealed_ticket: part.ticket,
            session_key: part.session_key,
            end_time: part.end_time,
        })
    });
    trace.end_span(span, net.now().0, &client.name);
    result
}

/// Reads the local clock of the host owning `ep`.
pub fn client_local_time_us(net: &Network, ep: Endpoint) -> Result<u64, KrbError> {
    let hid = net
        .host_by_addr(ep.addr)
        .ok_or_else(|| KrbError::Net(format!("no host for {}", ep.addr)))?;
    Ok(net.host_time(hid).0)
}

/// Parameters for a TGS request beyond the defaults.
#[derive(Clone, Debug, Default)]
pub struct TgsParams {
    /// Request options.
    pub options: KdcOptions,
    /// Additional ticket for ENC-TKT-IN-SKEY / REUSE-SKEY.
    pub additional_ticket: Option<Vec<u8>>,
    /// Authorization data.
    pub authz_data: Vec<u8>,
    /// Destination address for a FORWARDED ticket.
    pub forward_addr: Option<u64>,
}

/// Obtains a service ticket via the TGS, using a ticket-granting
/// credential.
#[allow(clippy::too_many_arguments)]
pub fn get_service_ticket(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    kdc_ep: Endpoint,
    tgt: &Credential,
    service: &Principal,
    params: TgsParams,
    rng: &mut dyn RandomSource,
) -> Result<Credential, KrbError> {
    get_service_ticket_at(net, config, client_ep, &[kdc_ep], tgt, service, params, rng)
}

/// [`get_service_ticket`] with replica failover: walks `kdcs`
/// round-robin across retry attempts. The request nonce is fixed (it
/// matches replies to this exchange); the authenticator is re-stamped
/// and re-sealed fresh per attempt.
#[allow(clippy::too_many_arguments)]
pub fn get_service_ticket_at(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    kdcs: &[Endpoint],
    tgt: &Credential,
    service: &Principal,
    params: TgsParams,
    rng: &mut dyn RandomSource,
) -> Result<Credential, KrbError> {
    assert!(!kdcs.is_empty(), "need at least one KDC endpoint");
    let nonce = rng.next_u64();
    let timeout = Some(SimDuration(config.retry.timeout_us));
    // Full per-server budget times the replica count, as in `login_at`.
    let mut policy = config.retry;
    policy.attempts = policy.attempts.saturating_mul(kdcs.len() as u32);

    let trace = net.tracer();
    let span = trace.begin_span(
        "tgs-exchange",
        net.now().0,
        vec![
            ("client", Value::str(tgt.client.to_string())),
            ("service", Value::str(service.to_string())),
        ],
    );
    let result = retry::run(net, &policy, nonce, |net, attempt| {
        let kdc_ep = kdcs[attempt as usize % kdcs.len()];
        let now = client_local_time_us(net, client_ep)?;

        // Build the request body first so the authenticator can seal a
        // checksum over it.
        let mut req = TgsReq {
            tgt: tgt.sealed_ticket.clone(),
            authenticator: Vec::new(),
            service: service.clone(),
            options: params.options,
            nonce,
            lifetime_us: config.ticket_lifetime_us,
            additional_ticket: params.additional_ticket.clone(),
            forward_addr: params.forward_addr,
            authz_data: params.authz_data.clone(),
        };
        let key_opt = config.checksum.is_keyed().then_some(&tgt.session_key);
        let cksum = checksum::compute(config.checksum, key_opt, &req.checksum_body())?;

        let auth = Authenticator {
            client: tgt.client.clone(),
            addr: client_ep.addr.0,
            timestamp: now,
            cksum: Some(cksum),
            service_binding: config.service_binding.then(|| service.clone()),
            subkey: None,
            seq_init: None,
        };
        req.authenticator = auth.seal(config.codec, config.ticket_layer, &tgt.session_key, rng)?;

        let reply = net.rpc_with_timeout(client_ep, kdc_ep, req.encode(config.codec), timeout)?;
        check_error(config, &reply).map_err(|e| reply_transient(net, e))?;
        let rep = TgsRep::decode(config.codec, &reply).map_err(|e| reply_transient(net, e))?;
        let part_bytes = config
            .ticket_layer
            .open(&tgt.session_key, 0, &rep.enc_part)
            .map_err(|e| reply_transient(net, e))?;
        let part = EncKdcRepPart::decode(config.codec, MsgType::EncTgsRepPart, &part_bytes)
            .map_err(|e| reply_transient(net, e))?;
        if part.nonce != nonce {
            return Err(reply_transient(net, KrbError::Remote("TGS reply nonce mismatch".into())));
        }
        // Recommendation (c): verify the collision-proof checksum binding
        // the sealed ticket to this reply, if the deployment provides it.
        if let Some(c) = &part.ticket_cksum {
            let key_opt = c.ctype.is_keyed().then_some(&tgt.session_key);
            checksum::verify(c, key_opt, &part.ticket)
                .map_err(|_| reply_transient(net, KrbError::BadChecksum))?;
        }

        let tr = net.tracer();
        tr.emit(
            EventKind::TicketDecrypted,
            net.now().0,
            vec![
                ("exchange", Value::str("tgs")),
                ("client", Value::str(tgt.client.to_string())),
                ("service", Value::str(service.to_string())),
                ("key_fpr", Value::str(crate::traceview::fingerprint(&part.session_key))),
            ],
        );
        tr.counter("client.tickets", &tgt.client.name, 1);
        Ok(Credential {
            client: tgt.client.clone(),
            service: service.clone(),
            sealed_ticket: part.ticket,
            session_key: part.session_key,
            end_time: part.end_time,
        })
    });
    trace.end_span(span, net.now().0, &tgt.client.name);
    result
}

/// Renews a renewable ticket-granting credential, extending its
/// validity window (same session key, new end time).
pub fn renew_tgt(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    kdc_ep: Endpoint,
    tgt: &Credential,
    rng: &mut dyn RandomSource,
) -> Result<Credential, KrbError> {
    get_service_ticket(
        net,
        config,
        client_ep,
        kdc_ep,
        tgt,
        &tgt.service,
        TgsParams { options: KdcOptions::empty().with(KdcOptions::RENEW), ..Default::default() },
        rng,
    )
}

/// Obtains a FORWARDED ticket-granting credential bound to
/// `dest_addr`, for transfer to another host. The paper recommends
/// *deleting* this feature; it exists here so its problems (no origin
/// recorded, cascading trust) are demonstrable.
#[allow(clippy::too_many_arguments)]
pub fn forward_tgt(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    kdc_ep: Endpoint,
    tgt: &Credential,
    dest_addr: u32,
    rng: &mut dyn RandomSource,
) -> Result<Credential, KrbError> {
    get_service_ticket(
        net,
        config,
        client_ep,
        kdc_ep,
        tgt,
        &tgt.service,
        TgsParams {
            options: KdcOptions::empty().with(KdcOptions::FORWARDED).with(KdcOptions::FORWARDABLE),
            forward_addr: Some(u64::from(dest_addr)),
            ..Default::default()
        },
        rng,
    )
}
