//! Principals: the `<name, instance, realm>` three-tuple.
//!
//! "If the principal is a user ... the primary name is the login
//! identifier, and the instance is either null or represents particular
//! attributes of the user, i.e., `root`. For a service, the service name
//! is used as the primary name and the machine name is used as the
//! instance, i.e., `rlogin.myhost`."

use std::fmt;

/// A Kerberos principal.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Principal {
    /// Primary name (login identifier or service name).
    pub name: String,
    /// Instance (empty, user attribute, or machine name).
    pub instance: String,
    /// Authentication domain.
    pub realm: String,
}

impl Principal {
    /// A user principal with a null instance.
    pub fn user(name: &str, realm: &str) -> Self {
        Principal { name: name.into(), instance: String::new(), realm: realm.into() }
    }

    /// A user principal with an instance (e.g. `pat.root`).
    pub fn user_instance(name: &str, instance: &str, realm: &str) -> Self {
        Principal { name: name.into(), instance: instance.into(), realm: realm.into() }
    }

    /// A service principal, e.g. `rlogin.myhost@REALM`.
    pub fn service(service: &str, host: &str, realm: &str) -> Self {
        Principal { name: service.into(), instance: host.into(), realm: realm.into() }
    }

    /// The ticket-granting service of `realm`.
    pub fn tgs(realm: &str) -> Self {
        Principal { name: "krbtgt".into(), instance: realm.into(), realm: realm.into() }
    }

    /// The TGS of `remote_realm` as registered in `local_realm` (the
    /// inter-realm principal).
    pub fn cross_realm_tgs(remote_realm: &str, local_realm: &str) -> Self {
        Principal { name: "krbtgt".into(), instance: remote_realm.into(), realm: local_realm.into() }
    }

    /// True if this is a ticket-granting-service principal.
    pub fn is_tgs(&self) -> bool {
        self.name == "krbtgt"
    }

    /// Parses `name[.instance]@realm`.
    pub fn parse(s: &str) -> Option<Principal> {
        let (np, realm) = s.split_once('@')?;
        if realm.is_empty() || np.is_empty() {
            return None;
        }
        let (name, instance) = match np.split_once('.') {
            Some((n, i)) => (n, i),
            None => (np, ""),
        };
        if name.is_empty() {
            return None;
        }
        Some(Principal { name: name.into(), instance: instance.into(), realm: realm.into() })
    }

    /// The V5-style salt for password-to-key derivation.
    pub fn salt(&self) -> String {
        format!("{}{}{}", self.realm, self.name, self.instance)
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instance.is_empty() {
            write!(f, "{}@{}", self.name, self.realm)
        } else {
            write!(f, "{}.{}@{}", self.name, self.instance, self.realm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        for p in [
            Principal::user("pat", "ATHENA.MIT.EDU"),
            Principal::user_instance("pat", "root", "ATHENA.MIT.EDU"),
            Principal::service("rlogin", "myhost", "ATHENA.MIT.EDU"),
            Principal::tgs("ATHENA.MIT.EDU"),
        ] {
            assert_eq!(Principal::parse(&p.to_string()), Some(p.clone()));
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Principal::parse("").is_none());
        assert!(Principal::parse("noat").is_none());
        assert!(Principal::parse("@realm").is_none());
        assert!(Principal::parse("name@").is_none());
        assert!(Principal::parse(".inst@realm").is_none());
    }

    #[test]
    fn tgs_shape() {
        let t = Principal::tgs("R");
        assert!(t.is_tgs());
        assert_eq!(t.to_string(), "krbtgt.R@R");
        let x = Principal::cross_realm_tgs("REMOTE", "LOCAL");
        assert!(x.is_tgs());
        assert_eq!(x.instance, "REMOTE");
        assert_eq!(x.realm, "LOCAL");
    }

    #[test]
    fn salts_differ_by_principal() {
        let a = Principal::user("pat", "R1").salt();
        let b = Principal::user("pat", "R2").salt();
        let c = Principal::user("sam", "R1").salt();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
