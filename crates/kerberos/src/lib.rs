//! # kerberos
//!
//! Kerberos V4 and V5-Draft-3, as analyzed by Bellovin & Merritt
//! (USENIX Winter 1991), with every recommended change implemented as a
//! switchable [`config::ProtocolConfig`] option.
//!
//! Layering, bottom-up:
//!
//! - [`encoding`] — the ambiguous legacy codec vs. the typed (DER-lite)
//!   codec.
//! - [`enclayer`] — V4 PCBC / V5 CBC+confounder / hardened
//!   CBC+IV+MAC encryption layers.
//! - [`principal`], [`flags`], [`ticket`], [`authenticator`],
//!   [`messages`] — the protocol data structures.
//! - [`database`], [`kdc`] — the authentication and ticket-granting
//!   services.
//! - [`client`], [`ccache`] — the client workflows and the credential
//!   cache storage model.
//! - [`appserver`], [`services`], [`session`], [`replay_cache`] —
//!   application servers, KRB_SAFE/KRB_PRIV sessions, and replay
//!   defense.
//! - [`crossrealm`] — inter-realm paths, routing, and trust policy.
//! - [`gateway`] — the Kerberos front-end for the `krb-gateway`
//!   admission tier (overload hardening of the KDC cluster).
//! - [`traceview`] — paper-notation rendering of traces and the
//!   key-fingerprint redaction helper (krb-trace integration).

pub mod appserver;
pub mod authenticator;
pub mod ccache;
pub mod client;
pub mod config;
pub mod crossrealm;
pub mod database;
pub mod enclayer;
pub mod encoding;
pub mod error;
pub mod flags;
pub mod gateway;
pub mod kdc;
pub mod messages;
pub mod principal;
pub mod replay_cache;
pub mod retry;
pub mod services;
pub mod session;
pub mod testbed;
pub mod ticket;
pub mod traceview;

pub use authenticator::Authenticator;
pub use client::{
    get_service_ticket, get_service_ticket_at, login, login_at, Credential, LoginInput, TgsParams,
};
pub use config::{AppProtection, AuthStyle, Freshness, PreauthMode, ProtocolConfig, RetryPolicy};
pub use database::{bulk_password, shard_for, shard_for_parts, KdcDatabase, ShardedDatabase};
pub use error::KrbError;
pub use gateway::{KrbFrontend, KrbGateway};
pub use kdc::{Kdc, KDC_PORT};
pub use principal::Principal;
pub use ticket::Ticket;
pub use traceview::{describe_wire, fingerprint, PaperLens};
