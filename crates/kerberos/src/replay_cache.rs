//! The authenticator replay cache.
//!
//! "It has been suggested that the proper defense is for the server to
//! store all live authenticators; thus, an attempt to reuse one can be
//! detected. In fact, the original design of Kerberos required such
//! caching, though this was never implemented." This module implements
//! it, and exposes its state cost for experiment E3.

use krb_crypto::md4::md4;
use std::collections::HashMap;

/// Result of offering an authenticator to the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheVerdict {
    /// Never seen within the live window.
    Fresh,
    /// Already presented: a replay.
    Replayed,
}

/// A cache of authenticators seen within the skew window.
#[derive(Clone, Debug, Default)]
pub struct ReplayCache {
    /// Digest of the sealed authenticator -> local time first seen (µs).
    seen: HashMap<[u8; 16], u64>,
    window_us: u64,
    last_purge_us: u64,
    /// Lifetime counters for the cost experiment.
    pub total_inserted: u64,
    /// Number of replays caught.
    pub replays_caught: u64,
}

impl ReplayCache {
    /// A cache that remembers entries for `window_us` (the skew window —
    /// older authenticators fail the timestamp check anyway).
    pub fn new(window_us: u64) -> Self {
        ReplayCache {
            seen: HashMap::new(),
            window_us,
            last_purge_us: 0,
            total_inserted: 0,
            replays_caught: 0,
        }
    }

    /// Offers a sealed authenticator observed at local time `now_us`.
    /// Expired entries are purged at most once per simulated second, so
    /// the per-request cost stays amortized O(1).
    pub fn offer(&mut self, sealed_authenticator: &[u8], now_us: u64) -> CacheVerdict {
        if now_us.saturating_sub(self.last_purge_us) >= 1_000_000 {
            self.purge(now_us);
        }
        let digest = md4(sealed_authenticator);
        if self.seen.contains_key(&digest) {
            self.replays_caught += 1;
            return CacheVerdict::Replayed;
        }
        self.seen.insert(digest, now_us);
        self.total_inserted += 1;
        CacheVerdict::Fresh
    }

    /// Drops entries older than the window.
    pub fn purge(&mut self, now_us: u64) {
        self.last_purge_us = now_us;
        let cutoff = now_us.saturating_sub(self.window_us);
        self.seen.retain(|_, &mut t| t >= cutoff);
    }

    /// Live entries right now (state cost, E3).
    pub fn live_entries(&self) -> usize {
        self.seen.len()
    }

    /// Approximate resident bytes (digest + timestamp per entry).
    pub fn approx_bytes(&self) -> usize {
        self.seen.len() * (16 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN5: u64 = 300_000_000;

    #[test]
    fn fresh_then_replayed() {
        let mut c = ReplayCache::new(MIN5);
        assert_eq!(c.offer(b"auth-1", 0), CacheVerdict::Fresh);
        assert_eq!(c.offer(b"auth-1", 1_000), CacheVerdict::Replayed);
        assert_eq!(c.offer(b"auth-2", 1_000), CacheVerdict::Fresh);
        assert_eq!(c.replays_caught, 1);
    }

    #[test]
    fn entries_expire_after_window() {
        let mut c = ReplayCache::new(MIN5);
        c.offer(b"auth-1", 0);
        // After the window the entry is purged; a re-offer registers as
        // fresh — correct, because the timestamp check rejects it
        // independently by then.
        assert_eq!(c.offer(b"auth-1", MIN5 + 1), CacheVerdict::Fresh);
    }

    #[test]
    fn state_grows_with_rate() {
        let mut c = ReplayCache::new(MIN5);
        for i in 0..1000u64 {
            c.offer(&i.to_be_bytes(), i * 1_000); // 1000 req/s for 1 ms each
        }
        assert_eq!(c.live_entries(), 1000);
        assert_eq!(c.approx_bytes(), 1000 * 24);
    }

    #[test]
    fn purge_keeps_live_entries() {
        let mut c = ReplayCache::new(100);
        c.offer(b"old", 0);
        c.offer(b"new", 90);
        c.purge(150);
        assert_eq!(c.live_entries(), 1);
        assert_eq!(c.offer(b"new", 151), CacheVerdict::Replayed);
    }
}
