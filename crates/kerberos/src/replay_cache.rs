//! The authenticator replay cache.
//!
//! "It has been suggested that the proper defense is for the server to
//! store all live authenticators; thus, an attempt to reuse one can be
//! detected. In fact, the original design of Kerberos required such
//! caching, though this was never implemented." This module implements
//! it, and exposes its state cost for experiment E3.
//!
//! Two robustness refinements beyond the paper's sketch:
//!
//! - **Check/commit split.** [`ReplayCache::offer`] inserts the digest
//!   before the caller has finished validating the rest of the request.
//!   If the request then fails for an unrelated reason (bad checksum,
//!   expired ticket), the entry poisons a later *legitimate* retry of
//!   the same authenticator — the retry is rejected as a replay even
//!   though the original was never accepted. Servers therefore call
//!   [`ReplayCache::check`] early and [`ReplayCache::commit`] only
//!   after every other check has passed.
//! - **Persistence with a fail-closed window.** A purely in-memory cache
//!   forgets everything on a crash, so an attacker who can crash a
//!   server (or wait for a reboot) replays a still-live authenticator
//!   with impunity. [`ReplayCache::snapshot`] serializes the cache;
//!   [`ReplayCache::restore`] reloads it at boot and records the
//!   interval between the last snapshot and the boot as a *fail-closed
//!   gap*: authenticators stamped inside that interval might have been
//!   presented while the cache was not being persisted, so the server
//!   refuses them outright ([`CacheVerdict::FailClosed`]) and the
//!   client must retry with a fresh authenticator.

use krb_crypto::md4::md4;
use std::collections::BTreeMap;

/// Result of offering an authenticator to the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheVerdict {
    /// Never seen within the live window.
    Fresh,
    /// Already presented: a replay.
    Replayed,
    /// The authenticator's timestamp falls inside the fail-closed
    /// startup gap: the cache cannot prove it was never presented, so
    /// the server refuses it. Honest clients recover by retrying with a
    /// freshly stamped authenticator.
    FailClosed,
}

/// Magic prefix of a serialized cache snapshot.
const SNAPSHOT_MAGIC: &[u8; 8] = b"RPLYCSH1";

/// A cache of authenticators seen within the skew window.
#[derive(Clone, Debug, Default)]
pub struct ReplayCache {
    /// Digest of the sealed authenticator -> local time first seen (µs).
    seen: BTreeMap<[u8; 16], u64>,
    window_us: u64,
    last_purge_us: u64,
    /// Fail-closed gap `(from, until)`: timestamps strictly inside are
    /// refused. `(0, 0)` means no gap.
    gap_from_us: u64,
    gap_until_us: u64,
    /// Lifetime counters for the cost experiment.
    pub total_inserted: u64,
    /// Number of replays caught.
    pub replays_caught: u64,
    /// Number of requests refused fail-closed after a restart.
    pub fail_closed_refusals: u64,
}

impl ReplayCache {
    /// A cache that remembers entries for `window_us` (the skew window —
    /// older authenticators fail the timestamp check anyway).
    pub fn new(window_us: u64) -> Self {
        ReplayCache { window_us, ..ReplayCache::default() }
    }

    /// An empty cache booted at `boot_us` with NO snapshot to restore
    /// from: everything still live at boot is suspect, so the whole
    /// window before boot is fail-closed.
    pub fn boot_fresh(window_us: u64, boot_us: u64) -> Self {
        ReplayCache {
            window_us,
            gap_from_us: boot_us.saturating_sub(window_us),
            gap_until_us: boot_us,
            ..ReplayCache::default()
        }
    }

    /// Checks a sealed authenticator stamped `stamp_us` (the sender's
    /// claimed time) against the cache at local time `now_us`, WITHOUT
    /// recording it. Purges expired entries at most once per simulated
    /// second, so the per-request cost stays amortized O(1).
    pub fn check(&mut self, sealed_authenticator: &[u8], stamp_us: u64, now_us: u64) -> CacheVerdict {
        if now_us.saturating_sub(self.last_purge_us) >= 1_000_000 {
            self.purge(now_us);
        }
        if self.seen.contains_key(&md4(sealed_authenticator)) {
            self.replays_caught += 1;
            return CacheVerdict::Replayed;
        }
        if stamp_us > self.gap_from_us && stamp_us < self.gap_until_us {
            self.fail_closed_refusals += 1;
            return CacheVerdict::FailClosed;
        }
        CacheVerdict::Fresh
    }

    /// Records a sealed authenticator the server has decided to ACCEPT.
    /// Call only after every other validation has passed, so a request
    /// that fails elsewhere cannot poison a legitimate retry.
    pub fn commit(&mut self, sealed_authenticator: &[u8], now_us: u64) {
        if self.seen.insert(md4(sealed_authenticator), now_us).is_none() {
            self.total_inserted += 1;
        }
    }

    /// Check-and-commit in one step, treating the authenticator's stamp
    /// as `now_us`. Kept for callers with no later failure paths; the
    /// pessimistic insert means a subsequent rejection of this request
    /// leaves the entry behind.
    pub fn offer(&mut self, sealed_authenticator: &[u8], now_us: u64) -> CacheVerdict {
        let v = self.check(sealed_authenticator, now_us, now_us);
        if v == CacheVerdict::Fresh {
            self.commit(sealed_authenticator, now_us);
        }
        v
    }

    /// Drops entries older than the window.
    pub fn purge(&mut self, now_us: u64) {
        self.last_purge_us = now_us;
        let cutoff = now_us.saturating_sub(self.window_us);
        self.seen.retain(|_, &mut t| t >= cutoff);
    }

    /// Live entries right now (state cost, E3).
    pub fn live_entries(&self) -> usize {
        self.seen.len()
    }

    /// Approximate resident bytes (digest + timestamp per entry).
    pub fn approx_bytes(&self) -> usize {
        self.seen.len() * (16 + 8)
    }

    /// The fail-closed gap `(from, until)`, `(0, 0)` if none.
    pub fn fail_closed_gap(&self) -> (u64, u64) {
        (self.gap_from_us, self.gap_until_us)
    }

    /// Serializes the cache to stable bytes (entries sorted by digest,
    /// so two snapshots of equal state are byte-identical). `taken_at_us`
    /// is recorded so a later [`ReplayCache::restore`] can compute the
    /// fail-closed gap.
    pub fn snapshot(&self, taken_at_us: u64) -> Vec<u8> {
        let mut entries: Vec<(&[u8; 16], &u64)> = self.seen.iter().collect();
        entries.sort_by_key(|(d, _)| **d);
        let mut out = Vec::with_capacity(8 + 8 + 8 + 8 + entries.len() * 24);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.window_us.to_be_bytes());
        out.extend_from_slice(&taken_at_us.to_be_bytes());
        out.extend_from_slice(&(entries.len() as u64).to_be_bytes());
        for (digest, t) in entries {
            out.extend_from_slice(digest);
            out.extend_from_slice(&t.to_be_bytes());
        }
        out
    }

    /// Restores a cache from snapshot bytes at boot time `boot_us`. The
    /// interval from the snapshot's capture time to `boot_us` becomes
    /// the fail-closed gap. Returns `None` on malformed bytes (callers
    /// fall back to [`ReplayCache::boot_fresh`]).
    pub fn restore(bytes: &[u8], boot_us: u64) -> Option<Self> {
        let rest = bytes.strip_prefix(&SNAPSHOT_MAGIC[..])?;
        if rest.len() < 24 {
            return None;
        }
        let u64_at =
            |b: &[u8], i: usize| u64::from_be_bytes(crate::encoding::be_array::<8>(&b[i..i + 8]));
        let window_us = u64_at(rest, 0);
        let taken_at_us = u64_at(rest, 8);
        let count = u64_at(rest, 16) as usize;
        let body = &rest[24..];
        if body.len() != count * 24 {
            return None;
        }
        let mut seen = BTreeMap::new();
        for i in 0..count {
            let digest: [u8; 16] = crate::encoding::be_array::<16>(&body[i * 24..i * 24 + 16]);
            seen.insert(digest, u64_at(body, i * 24 + 16));
        }
        Some(ReplayCache {
            total_inserted: seen.len() as u64,
            seen,
            window_us,
            gap_from_us: taken_at_us,
            gap_until_us: boot_us,
            ..ReplayCache::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::prelude::*;
    use testkit::TestRng;

    const MIN5: u64 = 300_000_000;

    #[test]
    fn fresh_then_replayed() {
        let mut c = ReplayCache::new(MIN5);
        assert_eq!(c.offer(b"auth-1", 0), CacheVerdict::Fresh);
        assert_eq!(c.offer(b"auth-1", 1_000), CacheVerdict::Replayed);
        assert_eq!(c.offer(b"auth-2", 1_000), CacheVerdict::Fresh);
        assert_eq!(c.replays_caught, 1);
    }

    #[test]
    fn entries_expire_after_window() {
        let mut c = ReplayCache::new(MIN5);
        c.offer(b"auth-1", 0);
        // After the window the entry is purged; a re-offer registers as
        // fresh — correct, because the timestamp check rejects it
        // independently by then.
        assert_eq!(c.offer(b"auth-1", MIN5 + 1), CacheVerdict::Fresh);
    }

    #[test]
    fn state_grows_with_rate() {
        let mut c = ReplayCache::new(MIN5);
        for i in 0..1000u64 {
            c.offer(&i.to_be_bytes(), i * 1_000); // 1000 req/s for 1 ms each
        }
        assert_eq!(c.live_entries(), 1000);
        assert_eq!(c.approx_bytes(), 1000 * 24);
    }

    #[test]
    fn purge_keeps_live_entries() {
        let mut c = ReplayCache::new(100);
        c.offer(b"old", 0);
        c.offer(b"new", 90);
        c.purge(150);
        assert_eq!(c.live_entries(), 1);
        assert_eq!(c.offer(b"new", 151), CacheVerdict::Replayed);
    }

    #[test]
    fn check_does_not_poison_retry() {
        let mut c = ReplayCache::new(MIN5);
        // Request checked, then rejected elsewhere (e.g. bad checksum):
        // no commit. A legitimate retry of the SAME authenticator must
        // still be fresh.
        assert_eq!(c.check(b"auth-x", 100, 100), CacheVerdict::Fresh);
        assert_eq!(c.check(b"auth-x", 100, 200), CacheVerdict::Fresh);
        c.commit(b"auth-x", 200);
        assert_eq!(c.check(b"auth-x", 100, 300), CacheVerdict::Replayed);
    }

    #[test]
    fn entry_exactly_at_window_boundary_survives_purge() {
        let mut c = ReplayCache::new(100);
        c.offer(b"edge", 50);
        // Purge at now = 150: cutoff = 50, and retention is `t >= cutoff`
        // — the entry seen exactly window_us ago is still held, so a
        // replay arriving at the last legal skew instant is caught.
        c.purge(150);
        assert_eq!(c.live_entries(), 1);
        assert_eq!(c.offer(b"edge", 150), CacheVerdict::Replayed);
        // One microsecond later it is gone.
        c.purge(151);
        assert_eq!(c.live_entries(), 0);
    }

    #[test]
    fn purge_amortized_once_per_second() {
        let mut c = ReplayCache::new(100);
        c.offer(b"a", 0);
        // Offers within the same simulated second do not purge, even
        // though `a` is already past its window.
        assert_eq!(c.offer(b"b", 500_000), CacheVerdict::Fresh);
        assert_eq!(c.live_entries(), 2, "no purge before 1s elapses");
        // Crossing the 1s boundary triggers the purge; both earlier
        // entries are past the 100µs window by then.
        assert_eq!(c.offer(b"c", 1_000_000), CacheVerdict::Fresh);
        assert_eq!(c.live_entries(), 1, "a and b purged, c live");
        assert_eq!(c.check(b"a", 1_000_001, 1_000_001), CacheVerdict::Fresh);
    }

    // Replayable via TESTKIT_SEED like every other seeded test.
    testkit::prop! {
        fn counter_invariants_under_random_workload [32] (seed in any::<u64>()) {
            let mut rng = TestRng::new(seed);
            let mut c = ReplayCache::new(1_000);
            let mut now = 0u64;
            for _ in 0..200 {
                now += rng.below(300);
                let token = rng.below(40).to_be_bytes();
                c.offer(&token, now);
                assert!(c.total_inserted >= c.live_entries() as u64, "inserted >= live");
                assert!(
                    c.total_inserted + c.replays_caught + c.fail_closed_refusals <= 200,
                    "every offer is counted at most once"
                );
            }
        }
    }

    // ---- persistence + fail-closed window ----

    #[test]
    fn snapshot_restore_roundtrip_catches_replay() {
        let mut c = ReplayCache::new(MIN5);
        c.offer(b"live-auth", 1_000_000);
        let snap = c.snapshot(2_000_000);
        // Server crashes and reboots at t=10s; the cache is restored.
        let mut restored = ReplayCache::restore(&snap, 10_000_000).unwrap();
        assert_eq!(
            restored.check(b"live-auth", 1_000_000, 10_000_001),
            CacheVerdict::Replayed,
            "replay of a snapshotted authenticator is caught across restart"
        );
    }

    #[test]
    fn fail_closed_gap_refuses_unprovable_window() {
        let mut c = ReplayCache::new(MIN5);
        c.offer(b"a", 1_000_000);
        let snap = c.snapshot(2_000_000);
        let mut restored = ReplayCache::restore(&snap, 10_000_000).unwrap();
        assert_eq!(restored.fail_closed_gap(), (2_000_000, 10_000_000));
        // Stamped inside (snapshot, boot): might have been presented
        // while the cache was not persisting — refused.
        assert_eq!(restored.check(b"unseen", 5_000_000, 10_000_001), CacheVerdict::FailClosed);
        assert_eq!(restored.fail_closed_refusals, 1);
        // Stamped before the snapshot: provably absent — fresh.
        assert_eq!(restored.check(b"unseen", 2_000_000, 10_000_001), CacheVerdict::Fresh);
        // Stamped after boot: the live cache covers it — fresh.
        assert_eq!(restored.check(b"unseen", 10_000_000, 10_000_001), CacheVerdict::Fresh);
    }

    #[test]
    fn boot_fresh_fail_closes_whole_window() {
        let mut c = ReplayCache::boot_fresh(MIN5, 400_000_000);
        assert_eq!(c.check(b"x", 399_999_999, 400_000_001), CacheVerdict::FailClosed);
        assert_eq!(c.check(b"x", 100_000_001, 400_000_001), CacheVerdict::FailClosed);
        // At exactly window_us before boot the skew check rejects the
        // stamp independently; the gap need not cover it.
        assert_eq!(c.check(b"x", 100_000_000, 400_000_001), CacheVerdict::Fresh);
        assert_eq!(c.check(b"x", 400_000_000, 400_000_001), CacheVerdict::Fresh);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let build = || {
            let mut c = ReplayCache::new(MIN5);
            // BTreeMap iteration order varies; snapshot must not.
            for i in 0..50u64 {
                c.offer(&i.to_be_bytes(), i);
            }
            c.snapshot(1_000)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn restore_rejects_malformed() {
        assert!(ReplayCache::restore(b"garbage", 0).is_none());
        assert!(ReplayCache::restore(b"RPLYCSH1short", 0).is_none());
        let mut truncated = ReplayCache::new(MIN5).snapshot(0);
        truncated.push(0);
        assert!(ReplayCache::restore(&truncated, 0).is_none());
    }
}
