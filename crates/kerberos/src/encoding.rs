//! Wire encodings: the ambiguous legacy format and the typed (DER-lite)
//! format.
//!
//! "The most simple analysis of the security of the Kerberos protocols
//! should check that there is no possibility of ambiguity between
//! messages sent in different contexts. That is, a ticket should never
//! be interpretable as an authenticator, or vice versa. ... This
//! repetitive and often intricate analysis would be unnecessary if
//! standard encodings (such as ASN.1) were used. These encodings should
//! include the overall message type."
//!
//! [`Codec::Legacy`] concatenates length-framed fields with no type tag
//! and no overall length — V4's situation, where cross-context
//! interpretation (attack A11) and truncation are possible.
//! [`Codec::Typed`] wraps each message in `[magic][type][len]`, the two
//! properties the paper actually needs from ASN.1: the message type
//! inside the (possibly encrypted) data, and an explicit length.

use crate::error::KrbError;

/// Copies an exactly-`N`-byte slice into an array. Every caller passes a
/// slice whose length it just checked (or produced via `take(N)`).
pub(crate) fn be_array<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut b = [0u8; N];
    b.copy_from_slice(s);
    b
}

/// Message type tags, placed inside the typed envelope (and therefore
/// inside the encryption when the message is sealed).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// A ticket (the sealed part).
    Ticket = 1,
    /// An authenticator.
    Authenticator = 2,
    /// Initial authentication request.
    AsReq = 3,
    /// Initial authentication reply.
    AsRep = 4,
    /// The encrypted part of an AS reply.
    EncAsRepPart = 5,
    /// Ticket-granting request.
    TgsReq = 6,
    /// Ticket-granting reply.
    TgsRep = 7,
    /// The encrypted part of a TGS reply.
    EncTgsRepPart = 8,
    /// Application request (ticket + authenticator).
    ApReq = 9,
    /// Application reply (mutual authentication).
    ApRep = 10,
    /// The encrypted part of an AP reply.
    EncApRepPart = 11,
    /// Error reply.
    KrbErr = 12,
    /// Integrity-protected application message.
    KrbSafe = 13,
    /// Encrypted application message.
    KrbPriv = 14,
    /// The encrypted part of a KRB_PRIV message.
    EncPrivPart = 15,
}

impl MsgType {
    /// Parses a tag byte.
    pub fn from_u8(v: u8) -> Option<MsgType> {
        use MsgType::*;
        Some(match v {
            1 => Ticket,
            2 => Authenticator,
            3 => AsReq,
            4 => AsRep,
            5 => EncAsRepPart,
            6 => TgsReq,
            7 => TgsRep,
            8 => EncTgsRepPart,
            9 => ApReq,
            10 => ApRep,
            11 => EncApRepPart,
            12 => KrbErr,
            13 => KrbSafe,
            14 => KrbPriv,
            15 => EncPrivPart,
            _ => return None,
        })
    }
}

/// Which wire encoding the deployment uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Codec {
    /// Field concatenation; no type tag, no overall length. Ambiguous
    /// across contexts.
    Legacy,
    /// `[0x4B][type][len u32][fields]`. Unambiguous and
    /// truncation-evident.
    Typed,
}

const TYPED_MAGIC: u8 = 0x4b; // 'K'

impl Codec {
    /// Wraps an encoded field body in the codec's envelope.
    pub fn wrap(self, mtype: MsgType, body: Vec<u8>) -> Vec<u8> {
        match self {
            Codec::Legacy => body,
            Codec::Typed => {
                let mut v = Vec::with_capacity(body.len() + 6);
                v.push(TYPED_MAGIC);
                v.push(mtype as u8);
                v.extend_from_slice(&(body.len() as u32).to_be_bytes());
                v.extend_from_slice(&body);
                v
            }
        }
    }

    /// Opens an envelope, checking the type tag and length when typed.
    /// Under the legacy codec any byte string "is" any message type —
    /// that is the vulnerability.
    pub fn open(self, mtype: MsgType, data: &[u8]) -> Result<&[u8], KrbError> {
        match self {
            Codec::Legacy => Ok(data),
            Codec::Typed => {
                if data.len() < 6 || data[0] != TYPED_MAGIC {
                    return Err(KrbError::Decode("missing typed envelope"));
                }
                if data[1] != mtype as u8 {
                    return Err(KrbError::WrongType { expected: mtype as u8, found: data[1] });
                }
                let len = u32::from_be_bytes(be_array::<4>(&data[2..6])) as usize;
                let body = &data[6..];
                // Truncation is fatal; trailing bytes beyond `len` are
                // tolerated because decrypted envelopes carry cipher
                // padding.
                if body.len() < len {
                    return Err(KrbError::Decode("typed envelope truncated"));
                }
                Ok(&body[..len])
            }
        }
    }
}

/// Field-level serializer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Appends a u8.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-framed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-framed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends an optional byte string (presence byte + framing).
    pub fn put_opt_bytes(&mut self, v: Option<&[u8]>) -> &mut Self {
        match v {
            Some(b) => {
                self.put_u8(1);
                self.put_bytes(b)
            }
            None => self.put_u8(0),
        }
    }

    /// Appends an optional u64.
    pub fn put_opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x)
            }
            None => self.put_u8(0),
        }
    }

    /// Consumes the encoder.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Field-level parser.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], KrbError> {
        if self.pos + n > self.data.len() {
            return Err(KrbError::Decode("truncated field"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a u8.
    pub fn take_u8(&mut self) -> Result<u8, KrbError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn take_u32(&mut self) -> Result<u32, KrbError> {
        Ok(u32::from_be_bytes(be_array::<4>(self.take(4)?)))
    }

    /// Reads a big-endian u64.
    pub fn take_u64(&mut self) -> Result<u64, KrbError> {
        Ok(u64::from_be_bytes(be_array::<8>(self.take(8)?)))
    }

    /// Reads a length-framed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, KrbError> {
        let len = self.take_u32()? as usize;
        if len > self.data.len() {
            return Err(KrbError::Decode("field length exceeds message"));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-framed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, KrbError> {
        String::from_utf8(self.take_bytes()?).map_err(|_| KrbError::Decode("invalid utf-8"))
    }

    /// Reads an optional byte string.
    pub fn take_opt_bytes(&mut self) -> Result<Option<Vec<u8>>, KrbError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_bytes()?)),
            _ => Err(KrbError::Decode("bad option byte")),
        }
    }

    /// Reads an optional u64.
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, KrbError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            _ => Err(KrbError::Decode("bad option byte")),
        }
    }

    /// Bytes remaining unread.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the whole input was consumed. The legacy decoder
    /// deliberately does NOT call this for application payloads — sloppy
    /// trailing-junk tolerance is part of what the chosen-plaintext
    /// splice (A7) exploits.
    pub fn finish(self) -> Result<(), KrbError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(KrbError::Decode("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(0xdead_beef).put_u64(42).put_str("pat").put_bytes(b"xyz");
        e.put_opt_bytes(None).put_opt_bytes(Some(b"k")).put_opt_u64(Some(9)).put_opt_u64(None);
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.take_u64().unwrap(), 42);
        assert_eq!(d.take_str().unwrap(), "pat");
        assert_eq!(d.take_bytes().unwrap(), b"xyz");
        assert_eq!(d.take_opt_bytes().unwrap(), None);
        assert_eq!(d.take_opt_bytes().unwrap(), Some(b"k".to_vec()));
        assert_eq!(d.take_opt_u64().unwrap(), Some(9));
        assert_eq!(d.take_opt_u64().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_detected_at_field_level() {
        let mut e = Encoder::new();
        e.put_str("a long string field");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 3]);
        assert!(d.take_str().is_err());
    }

    #[test]
    fn absurd_length_rejected() {
        let mut d = Decoder::new(&[0xff, 0xff, 0xff, 0xff, 1, 2]);
        assert!(d.take_bytes().is_err());
    }

    #[test]
    fn typed_envelope_roundtrip() {
        let body = b"ticket fields".to_vec();
        let wire = Codec::Typed.wrap(MsgType::Ticket, body.clone());
        assert_eq!(Codec::Typed.open(MsgType::Ticket, &wire).unwrap(), &body[..]);
    }

    #[test]
    fn typed_envelope_rejects_cross_type() {
        // The anti-confusion property: a Ticket cannot be unwrapped as an
        // Authenticator.
        let wire = Codec::Typed.wrap(MsgType::Ticket, b"fields".to_vec());
        assert!(matches!(
            Codec::Typed.open(MsgType::Authenticator, &wire),
            Err(KrbError::WrongType { .. })
        ));
    }

    #[test]
    fn typed_envelope_rejects_truncation() {
        let wire = Codec::Typed.wrap(MsgType::KrbPriv, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(Codec::Typed.open(MsgType::KrbPriv, &wire[..wire.len() - 2]).is_err());
    }

    #[test]
    fn legacy_accepts_anything_as_anything() {
        // The vulnerability, stated as a test: the same bytes unwrap as
        // both a Ticket and an Authenticator.
        let bytes = b"whatever".to_vec();
        assert!(Codec::Legacy.open(MsgType::Ticket, &bytes).is_ok());
        assert!(Codec::Legacy.open(MsgType::Authenticator, &bytes).is_ok());
    }

    #[test]
    fn msgtype_tags_roundtrip() {
        for t in 1u8..=15 {
            let m = MsgType::from_u8(t).unwrap();
            assert_eq!(m as u8, t);
        }
        assert!(MsgType::from_u8(0).is_none());
        assert!(MsgType::from_u8(16).is_none());
    }
}
