//! Wire encodings: the ambiguous legacy format and the typed (DER-lite)
//! format.
//!
//! "The most simple analysis of the security of the Kerberos protocols
//! should check that there is no possibility of ambiguity between
//! messages sent in different contexts. That is, a ticket should never
//! be interpretable as an authenticator, or vice versa. ... This
//! repetitive and often intricate analysis would be unnecessary if
//! standard encodings (such as ASN.1) were used. These encodings should
//! include the overall message type."
//!
//! [`Codec::Legacy`] concatenates length-framed fields with no type tag
//! and no overall length — V4's situation, where cross-context
//! interpretation (attack A11) and truncation are possible.
//! [`Codec::Typed`] wraps each message in `[magic][type][len]`, the two
//! properties the paper actually needs from ASN.1: the message type
//! inside the (possibly encrypted) data, and an explicit length.
//! [`Codec::Wire`] is the wire-realistic upgrade: a *versioned* envelope
//! `[magic][version][msg-type][len]` whose message-type tags follow the
//! RFC 4120 numbering (AS-REQ 0x0a … KRB-ERROR 0x1e) with picky-krb's
//! field tags for tickets, authenticators, and enc-parts, plus an
//! extensible tagged pa-data list. It is the format `krb-fuzz` attacks.

use crate::error::KrbError;

/// Converts an in-memory length to its 4-byte wire form, saturating at
/// `u32::MAX` instead of truncating (P003). A saturated length can
/// never frame correctly — every decoder rejects `body.len() < len` —
/// so oversized input fails closed rather than silently mis-framing;
/// for all representable lengths the bytes are identical to the old
/// `as u32` cast.
pub fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Wire-format constants for [`Codec::Wire`]. The message-type numbers
/// mirror RFC 4120 (and picky-krb's constants table); the field tags for
/// sealed sub-structures use the RFC's application-tag numbers. The full
/// tag table is documented in DESIGN.md.
pub mod wire {
    /// Envelope magic ('K').
    pub const MAGIC: u8 = 0x4b;
    /// Protocol version (RFC 4120 pvno 5).
    pub const VERSION: u8 = 0x05;
    /// Envelope header length: magic, version, msg-type, len u32.
    pub const HEADER_LEN: usize = 7;

    /// Ticket field tag.
    pub const TICKET: u8 = 0x01;
    /// Authenticator field tag.
    pub const AUTHENTICATOR: u8 = 0x02;
    /// AS-REQ message type.
    pub const AS_REQ: u8 = 0x0a;
    /// AS-REP message type.
    pub const AS_REP: u8 = 0x0b;
    /// TGS-REQ message type.
    pub const TGS_REQ: u8 = 0x0c;
    /// TGS-REP message type.
    pub const TGS_REP: u8 = 0x0d;
    /// AP-REQ message type.
    pub const AP_REQ: u8 = 0x0e;
    /// AP-REP message type.
    pub const AP_REP: u8 = 0x0f;
    /// KRB-SAFE message type.
    pub const KRB_SAFE: u8 = 0x14;
    /// KRB-PRIV message type.
    pub const KRB_PRIV: u8 = 0x15;
    /// EncASRepPart field tag.
    pub const ENC_AS_REP_PART: u8 = 0x19;
    /// EncTGSRepPart field tag.
    pub const ENC_TGS_REP_PART: u8 = 0x1a;
    /// EncAPRepPart field tag.
    pub const ENC_AP_REP_PART: u8 = 0x1b;
    /// EncKrbPrivPart field tag.
    pub const ENC_PRIV_PART: u8 = 0x1c;
    /// KRB-ERROR message type.
    pub const KRB_ERROR: u8 = 0x1e;
}

/// Copies an exactly-`N`-byte slice into an array. Every caller passes a
/// slice whose length it just checked (or produced via `take(N)`).
pub(crate) fn be_array<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut b = [0u8; N];
    b.copy_from_slice(s);
    b
}

/// Message type tags, placed inside the typed envelope (and therefore
/// inside the encryption when the message is sealed).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// A ticket (the sealed part).
    Ticket = 1,
    /// An authenticator.
    Authenticator = 2,
    /// Initial authentication request.
    AsReq = 3,
    /// Initial authentication reply.
    AsRep = 4,
    /// The encrypted part of an AS reply.
    EncAsRepPart = 5,
    /// Ticket-granting request.
    TgsReq = 6,
    /// Ticket-granting reply.
    TgsRep = 7,
    /// The encrypted part of a TGS reply.
    EncTgsRepPart = 8,
    /// Application request (ticket + authenticator).
    ApReq = 9,
    /// Application reply (mutual authentication).
    ApRep = 10,
    /// The encrypted part of an AP reply.
    EncApRepPart = 11,
    /// Error reply.
    KrbErr = 12,
    /// Integrity-protected application message.
    KrbSafe = 13,
    /// Encrypted application message.
    KrbPriv = 14,
    /// The encrypted part of a KRB_PRIV message.
    EncPrivPart = 15,
}

impl MsgType {
    /// Parses a tag byte.
    pub fn from_u8(v: u8) -> Option<MsgType> {
        use MsgType::*;
        Some(match v {
            1 => Ticket,
            2 => Authenticator,
            3 => AsReq,
            4 => AsRep,
            5 => EncAsRepPart,
            6 => TgsReq,
            7 => TgsRep,
            8 => EncTgsRepPart,
            9 => ApReq,
            10 => ApRep,
            11 => EncApRepPart,
            12 => KrbErr,
            13 => KrbSafe,
            14 => KrbPriv,
            15 => EncPrivPart,
            _ => return None,
        })
    }

    /// The RFC 4120-style tag this type carries under [`Codec::Wire`].
    pub fn wire_tag(self) -> u8 {
        match self {
            MsgType::Ticket => wire::TICKET,
            MsgType::Authenticator => wire::AUTHENTICATOR,
            MsgType::AsReq => wire::AS_REQ,
            MsgType::AsRep => wire::AS_REP,
            MsgType::EncAsRepPart => wire::ENC_AS_REP_PART,
            MsgType::TgsReq => wire::TGS_REQ,
            MsgType::TgsRep => wire::TGS_REP,
            MsgType::EncTgsRepPart => wire::ENC_TGS_REP_PART,
            MsgType::ApReq => wire::AP_REQ,
            MsgType::ApRep => wire::AP_REP,
            MsgType::EncApRepPart => wire::ENC_AP_REP_PART,
            MsgType::KrbErr => wire::KRB_ERROR,
            MsgType::KrbSafe => wire::KRB_SAFE,
            MsgType::KrbPriv => wire::KRB_PRIV,
            MsgType::EncPrivPart => wire::ENC_PRIV_PART,
        }
    }

    /// Parses an RFC 4120-style wire tag.
    pub fn from_wire_tag(v: u8) -> Option<MsgType> {
        Some(match v {
            wire::TICKET => MsgType::Ticket,
            wire::AUTHENTICATOR => MsgType::Authenticator,
            wire::AS_REQ => MsgType::AsReq,
            wire::AS_REP => MsgType::AsRep,
            wire::ENC_AS_REP_PART => MsgType::EncAsRepPart,
            wire::TGS_REQ => MsgType::TgsReq,
            wire::TGS_REP => MsgType::TgsRep,
            wire::ENC_TGS_REP_PART => MsgType::EncTgsRepPart,
            wire::AP_REQ => MsgType::ApReq,
            wire::AP_REP => MsgType::ApRep,
            wire::ENC_AP_REP_PART => MsgType::EncApRepPart,
            wire::KRB_ERROR => MsgType::KrbErr,
            wire::KRB_SAFE => MsgType::KrbSafe,
            wire::KRB_PRIV => MsgType::KrbPriv,
            wire::ENC_PRIV_PART => MsgType::EncPrivPart,
            _ => return None,
        })
    }
}

/// Which wire encoding the deployment uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Codec {
    /// Field concatenation; no type tag, no overall length. Ambiguous
    /// across contexts.
    Legacy,
    /// `[0x4B][type][len u32][fields]`. Unambiguous and
    /// truncation-evident.
    Typed,
    /// `[0x4B][version][msg-type][len u32][fields]`: versioned, RFC
    /// 4120-numbered tags, extensible pa-data. Unknown pa-data types are
    /// carried opaquely instead of rejected.
    Wire,
}

const TYPED_MAGIC: u8 = 0x4b; // 'K'

impl Codec {
    /// Wraps an encoded field body in the codec's envelope.
    pub fn wrap(self, mtype: MsgType, body: Vec<u8>) -> Vec<u8> {
        match self {
            Codec::Legacy => body,
            Codec::Typed => {
                let mut v = Vec::with_capacity(body.len() + 6);
                v.push(TYPED_MAGIC);
                v.push(mtype as u8);
                v.extend_from_slice(&len_u32(body.len()).to_be_bytes());
                v.extend_from_slice(&body);
                v
            }
            Codec::Wire => {
                let mut v = Vec::with_capacity(body.len() + wire::HEADER_LEN);
                v.push(wire::MAGIC);
                v.push(wire::VERSION);
                v.push(mtype.wire_tag());
                v.extend_from_slice(&len_u32(body.len()).to_be_bytes());
                v.extend_from_slice(&body);
                v
            }
        }
    }

    /// Whether decoders under this codec carry unknown pa-data types
    /// opaquely (the extensibility the wire format adds) instead of
    /// rejecting them.
    pub fn pa_extensible(self) -> bool {
        self == Codec::Wire
    }

    /// Opens an envelope, checking the type tag and length when typed or
    /// wire. Under the legacy codec any byte string "is" any message
    /// type — that is the vulnerability. Failures name the envelope
    /// field and byte offset that broke, so a reject off a hostile wire
    /// is diagnosable.
    pub fn open(self, mtype: MsgType, data: &[u8]) -> Result<&[u8], KrbError> {
        match self {
            Codec::Legacy => Ok(data),
            Codec::Typed => {
                if data.len() < 6 {
                    return Err(KrbError::Envelope {
                        codec: "typed",
                        field: "header",
                        offset: data.len(),
                        found: None,
                    });
                }
                if data[0] != TYPED_MAGIC {
                    return Err(KrbError::Envelope {
                        codec: "typed",
                        field: "magic",
                        offset: 0,
                        found: Some(data[0]),
                    });
                }
                if data[1] != mtype as u8 {
                    return Err(KrbError::WrongType { expected: mtype as u8, found: data[1] });
                }
                let len = u32::from_be_bytes(be_array::<4>(&data[2..6])) as usize;
                let body = &data[6..];
                // Truncation is fatal; trailing bytes beyond `len` are
                // tolerated because decrypted envelopes carry cipher
                // padding.
                if body.len() < len {
                    return Err(KrbError::Envelope {
                        codec: "typed",
                        field: "length",
                        offset: 2,
                        found: None,
                    });
                }
                Ok(&body[..len])
            }
            Codec::Wire => {
                if data.len() < wire::HEADER_LEN {
                    return Err(KrbError::Envelope {
                        codec: "wire",
                        field: "header",
                        offset: data.len(),
                        found: None,
                    });
                }
                if data[0] != wire::MAGIC {
                    return Err(KrbError::Envelope {
                        codec: "wire",
                        field: "magic",
                        offset: 0,
                        found: Some(data[0]),
                    });
                }
                if data[1] != wire::VERSION {
                    return Err(KrbError::Envelope {
                        codec: "wire",
                        field: "version",
                        offset: 1,
                        found: Some(data[1]),
                    });
                }
                let expected = mtype.wire_tag();
                if data[2] != expected {
                    // A known-but-different tag is a cross-context read
                    // (the confusion the tag exists to stop); an unknown
                    // tag is garbage.
                    return Err(match MsgType::from_wire_tag(data[2]) {
                        Some(_) => KrbError::WrongType { expected, found: data[2] },
                        None => KrbError::Envelope {
                            codec: "wire",
                            field: "msg-type",
                            offset: 2,
                            found: Some(data[2]),
                        },
                    });
                }
                let len = u32::from_be_bytes(be_array::<4>(&data[3..7])) as usize;
                let body = &data[wire::HEADER_LEN..];
                // Same padding tolerance as the typed codec: sealed
                // envelopes come back with cipher padding appended.
                if body.len() < len {
                    return Err(KrbError::Envelope {
                        codec: "wire",
                        field: "length",
                        offset: 3,
                        found: None,
                    });
                }
                Ok(&body[..len])
            }
        }
    }
}

/// Field-level serializer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Appends a u8.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-framed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(len_u32(v.len()));
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-framed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends an optional byte string (presence byte + framing).
    pub fn put_opt_bytes(&mut self, v: Option<&[u8]>) -> &mut Self {
        match v {
            Some(b) => {
                self.put_u8(1);
                self.put_bytes(b)
            }
            None => self.put_u8(0),
        }
    }

    /// Appends an optional u64.
    pub fn put_opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x)
            }
            None => self.put_u8(0),
        }
    }

    /// Consumes the encoder.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Field-level parser. Failures carry the byte offset where decoding
/// stopped and, when the caller labels its reads with
/// [`Decoder::field`], the name of the field being decoded.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    field: &'static str,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0, field: "" }
    }

    /// Labels subsequent reads as decoding `name`, so failures report
    /// which message field broke rather than a bare offset.
    pub fn field(&mut self, name: &'static str) -> &mut Self {
        self.field = name;
        self
    }

    /// Current byte offset into the body.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// A [`KrbError::DecodeAt`] for the current field and offset.
    pub fn fail(&self, what: &'static str) -> KrbError {
        KrbError::DecodeAt { what, field: self.field, offset: self.pos }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], KrbError> {
        if self.pos + n > self.data.len() {
            return Err(self.fail("truncated field"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a u8.
    pub fn take_u8(&mut self) -> Result<u8, KrbError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn take_u32(&mut self) -> Result<u32, KrbError> {
        Ok(u32::from_be_bytes(be_array::<4>(self.take(4)?)))
    }

    /// Reads a big-endian u64.
    pub fn take_u64(&mut self) -> Result<u64, KrbError> {
        Ok(u64::from_be_bytes(be_array::<8>(self.take(8)?)))
    }

    /// Reads a length-framed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, KrbError> {
        let len = self.take_u32()? as usize;
        if len > self.data.len() {
            return Err(self.fail("field length exceeds message"));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-framed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, KrbError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes).map_err(|_| self.fail("invalid utf-8"))
    }

    /// Reads an optional byte string.
    pub fn take_opt_bytes(&mut self) -> Result<Option<Vec<u8>>, KrbError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_bytes()?)),
            _ => Err(self.fail("bad option byte")),
        }
    }

    /// Reads an optional u64.
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, KrbError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            _ => Err(self.fail("bad option byte")),
        }
    }

    /// Bytes remaining unread.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the whole input was consumed. The legacy decoder
    /// deliberately does NOT call this for application payloads — sloppy
    /// trailing-junk tolerance is part of what the chosen-plaintext
    /// splice (A7) exploits.
    pub fn finish(self) -> Result<(), KrbError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.fail("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(0xdead_beef).put_u64(42).put_str("pat").put_bytes(b"xyz");
        e.put_opt_bytes(None).put_opt_bytes(Some(b"k")).put_opt_u64(Some(9)).put_opt_u64(None);
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.take_u64().unwrap(), 42);
        assert_eq!(d.take_str().unwrap(), "pat");
        assert_eq!(d.take_bytes().unwrap(), b"xyz");
        assert_eq!(d.take_opt_bytes().unwrap(), None);
        assert_eq!(d.take_opt_bytes().unwrap(), Some(b"k".to_vec()));
        assert_eq!(d.take_opt_u64().unwrap(), Some(9));
        assert_eq!(d.take_opt_u64().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_detected_at_field_level() {
        let mut e = Encoder::new();
        e.put_str("a long string field");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 3]);
        assert!(d.take_str().is_err());
    }

    #[test]
    fn absurd_length_rejected() {
        let mut d = Decoder::new(&[0xff, 0xff, 0xff, 0xff, 1, 2]);
        assert!(d.take_bytes().is_err());
    }

    #[test]
    fn typed_envelope_roundtrip() {
        let body = b"ticket fields".to_vec();
        let wire = Codec::Typed.wrap(MsgType::Ticket, body.clone());
        assert_eq!(Codec::Typed.open(MsgType::Ticket, &wire).unwrap(), &body[..]);
    }

    #[test]
    fn typed_envelope_rejects_cross_type() {
        // The anti-confusion property: a Ticket cannot be unwrapped as an
        // Authenticator.
        let wire = Codec::Typed.wrap(MsgType::Ticket, b"fields".to_vec());
        assert!(matches!(
            Codec::Typed.open(MsgType::Authenticator, &wire),
            Err(KrbError::WrongType { .. })
        ));
    }

    #[test]
    fn typed_envelope_rejects_truncation() {
        let wire = Codec::Typed.wrap(MsgType::KrbPriv, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(Codec::Typed.open(MsgType::KrbPriv, &wire[..wire.len() - 2]).is_err());
    }

    #[test]
    fn legacy_accepts_anything_as_anything() {
        // The vulnerability, stated as a test: the same bytes unwrap as
        // both a Ticket and an Authenticator.
        let bytes = b"whatever".to_vec();
        assert!(Codec::Legacy.open(MsgType::Ticket, &bytes).is_ok());
        assert!(Codec::Legacy.open(MsgType::Authenticator, &bytes).is_ok());
    }

    #[test]
    fn msgtype_tags_roundtrip() {
        for t in 1u8..=15 {
            let m = MsgType::from_u8(t).unwrap();
            assert_eq!(m as u8, t);
        }
        assert!(MsgType::from_u8(0).is_none());
        assert!(MsgType::from_u8(16).is_none());
    }

    fn all_msg_types() -> [MsgType; 15] {
        use MsgType::*;
        [
            Ticket,
            Authenticator,
            AsReq,
            AsRep,
            EncAsRepPart,
            TgsReq,
            TgsRep,
            EncTgsRepPart,
            ApReq,
            ApRep,
            EncApRepPart,
            KrbErr,
            KrbSafe,
            KrbPriv,
            EncPrivPart,
        ]
    }

    #[test]
    fn wire_tags_follow_rfc4120_numbering() {
        assert_eq!(MsgType::AsReq.wire_tag(), 0x0a);
        assert_eq!(MsgType::AsRep.wire_tag(), 0x0b);
        assert_eq!(MsgType::TgsReq.wire_tag(), 0x0c);
        assert_eq!(MsgType::TgsRep.wire_tag(), 0x0d);
        assert_eq!(MsgType::ApReq.wire_tag(), 0x0e);
        assert_eq!(MsgType::ApRep.wire_tag(), 0x0f);
        assert_eq!(MsgType::KrbSafe.wire_tag(), 0x14);
        assert_eq!(MsgType::KrbPriv.wire_tag(), 0x15);
        assert_eq!(MsgType::KrbErr.wire_tag(), 0x1e);
        for m in all_msg_types() {
            assert_eq!(MsgType::from_wire_tag(m.wire_tag()), Some(m), "{m:?}");
        }
        assert!(MsgType::from_wire_tag(0x00).is_none());
        assert!(MsgType::from_wire_tag(0xff).is_none());
    }

    #[test]
    fn wire_envelope_roundtrip_all_types() {
        for m in all_msg_types() {
            let body = vec![m.wire_tag(); 9];
            let framed = Codec::Wire.wrap(m, body.clone());
            assert_eq!(framed[0], wire::MAGIC);
            assert_eq!(framed[1], wire::VERSION);
            assert_eq!(framed[2], m.wire_tag());
            assert_eq!(Codec::Wire.open(m, &framed).unwrap(), &body[..]);
        }
    }

    #[test]
    fn wire_envelope_rejects_cross_type() {
        let framed = Codec::Wire.wrap(MsgType::Ticket, b"fields".to_vec());
        assert_eq!(
            Codec::Wire.open(MsgType::Authenticator, &framed),
            Err(KrbError::WrongType {
                expected: wire::AUTHENTICATOR,
                found: wire::TICKET
            })
        );
    }

    #[test]
    fn wire_envelope_diagnoses_each_field() {
        let good = Codec::Wire.wrap(MsgType::AsReq, vec![1, 2, 3, 4]);

        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert_eq!(
            Codec::Wire.open(MsgType::AsReq, &bad_magic),
            Err(KrbError::Envelope { codec: "wire", field: "magic", offset: 0, found: Some(0) })
        );

        let mut bad_version = good.clone();
        bad_version[1] = 0x04;
        assert_eq!(
            Codec::Wire.open(MsgType::AsReq, &bad_version),
            Err(KrbError::Envelope {
                codec: "wire",
                field: "version",
                offset: 1,
                found: Some(4)
            })
        );

        // An unknown msg-type byte is garbage, not a cross-context read.
        let mut unknown_tag = good.clone();
        unknown_tag[2] = 0x7f;
        assert_eq!(
            Codec::Wire.open(MsgType::AsReq, &unknown_tag),
            Err(KrbError::Envelope {
                codec: "wire",
                field: "msg-type",
                offset: 2,
                found: Some(0x7f)
            })
        );

        // Length lies: header claims more than is present.
        let mut overlong = good.clone();
        overlong[6] = 0xff;
        assert_eq!(
            Codec::Wire.open(MsgType::AsReq, &overlong),
            Err(KrbError::Envelope { codec: "wire", field: "length", offset: 3, found: None })
        );

        // Too short for even a header.
        assert_eq!(
            Codec::Wire.open(MsgType::AsReq, &good[..5]),
            Err(KrbError::Envelope { codec: "wire", field: "header", offset: 5, found: None })
        );
    }

    #[test]
    fn wire_envelope_tolerates_cipher_padding() {
        let body = b"padded body".to_vec();
        let mut framed = Codec::Wire.wrap(MsgType::KrbPriv, body.clone());
        framed.extend_from_slice(&[0u8; 7]); // cipher padding
        assert_eq!(Codec::Wire.open(MsgType::KrbPriv, &framed).unwrap(), &body[..]);
    }

    #[test]
    fn decoder_failures_carry_field_and_offset() {
        let mut e = Encoder::new();
        e.put_u32(5); // claims 5 bytes but only 2 follow
        e.put_u8(1).put_u8(2);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.field("client-name");
        let err = d.take_bytes().unwrap_err();
        assert_eq!(
            err,
            KrbError::DecodeAt { what: "truncated field", field: "client-name", offset: 4 }
        );
        assert_eq!(
            err.to_string(),
            "malformed message: truncated field in field 'client-name' at byte 4"
        );
    }

    #[test]
    fn only_wire_is_pa_extensible() {
        assert!(!Codec::Legacy.pa_extensible());
        assert!(!Codec::Typed.pa_extensible());
        assert!(Codec::Wire.pa_extensible());
    }
}
