//! Authenticators: `{A_c}K_{c,s}`.
//!
//! "To guard against replay attacks, all tickets presented are
//! accompanied by an authenticator ... a brief string encrypted in the
//! session key and containing a timestamp." The optional fields carry
//! the paper's recommended extensions: a checksum binding the
//! authenticator to its enclosing request and ticket, a subkey
//! contribution for true-session-key negotiation, and an initial
//! sequence number.

use crate::encoding::{Codec, Decoder, Encoder, MsgType};
use crate::enclayer::EncLayer;
use crate::error::KrbError;
use crate::principal::Principal;
use crate::ticket::{put_principal, take_principal};
use krb_crypto::checksum::{Checksum, ChecksumType};
use krb_crypto::des::{DesKey, ScheduledKey};
use krb_crypto::rng::RandomSource;

/// The plaintext contents of an authenticator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Authenticator {
    /// The client principal.
    pub client: Principal,
    /// The client's claimed network address.
    pub addr: u32,
    /// The client's local clock (µs).
    pub timestamp: u64,
    /// Optional checksum over the enclosing request body (Draft 3:
    /// "protected by a checksum sealed in the encrypted authenticator").
    pub cksum: Option<Checksum>,
    /// Optional service name binding (the fix for A10: tie the
    /// authenticator to the intended service).
    pub service_binding: Option<Principal>,
    /// Optional client subkey contribution for session-key negotiation.
    pub subkey: Option<u64>,
    /// Optional initial sequence number.
    pub seq_init: Option<u64>,
}

impl Authenticator {
    /// A minimal V4-style authenticator.
    pub fn basic(client: Principal, addr: u32, timestamp: u64) -> Self {
        Authenticator {
            client,
            addr,
            timestamp,
            cksum: None,
            service_binding: None,
            subkey: None,
            seq_init: None,
        }
    }

    /// Serializes the plaintext fields.
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        put_principal(&mut e, &self.client);
        e.put_u32(self.addr).put_u64(self.timestamp);
        match &self.cksum {
            Some(c) => {
                e.put_u8(1).put_u8(checksum_tag(c.ctype)).put_bytes(&c.value);
            }
            None => {
                e.put_u8(0);
            }
        }
        match &self.service_binding {
            Some(p) => {
                e.put_u8(1);
                put_principal(&mut e, p);
            }
            None => {
                e.put_u8(0);
            }
        }
        e.put_opt_u64(self.subkey);
        e.put_opt_u64(self.seq_init);
        codec.wrap(MsgType::Authenticator, e.finish())
    }

    /// Parses the plaintext fields.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<Authenticator, KrbError> {
        let body = codec.open(MsgType::Authenticator, data)?;
        let mut d = Decoder::new(body);
        let client = take_principal(d.field("client"))?;
        let addr = d.field("addr").take_u32()?;
        let timestamp = d.field("timestamp").take_u64()?;
        let cksum = match d.field("cksum").take_u8()? {
            0 => None,
            1 => {
                let ctype = checksum_from_tag(d.take_u8()?)?;
                Some(Checksum { ctype, value: d.take_bytes()?.into() })
            }
            _ => return Err(d.fail("bad cksum option")),
        };
        let service_binding = match d.field("service-binding").take_u8()? {
            0 => None,
            1 => Some(take_principal(&mut d)?),
            _ => return Err(d.fail("bad binding option")),
        };
        let subkey = d.field("subkey").take_opt_u64()?;
        let seq_init = d.field("seq-init").take_opt_u64()?;
        Ok(Authenticator { client, addr, timestamp, cksum, service_binding, subkey, seq_init })
    }

    /// Encrypts under the session key.
    pub fn seal(
        &self,
        codec: Codec,
        layer: EncLayer,
        session_key: &DesKey,
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        layer.seal(session_key, 0, &self.encode(codec), rng)
    }

    /// Decrypts and parses.
    pub fn unseal(
        codec: Codec,
        layer: EncLayer,
        session_key: &DesKey,
        data: &[u8],
    ) -> Result<Authenticator, KrbError> {
        let pt = layer.open(session_key, 0, data)?;
        Authenticator::decode(codec, &pt)
    }

    /// Decrypts and parses with a precomputed schedule (the KDC's batch
    /// path expands the TGS-session key once per request, not once per
    /// sealed part).
    pub fn unseal_with(
        codec: Codec,
        layer: EncLayer,
        session_key: &ScheduledKey,
        data: &[u8],
    ) -> Result<Authenticator, KrbError> {
        let pt = layer.open_with(session_key, 0, data)?;
        Authenticator::decode(codec, &pt)
    }
}

/// Wire tag for a checksum type.
pub(crate) fn checksum_tag(c: ChecksumType) -> u8 {
    match c {
        ChecksumType::Crc32 => 1,
        ChecksumType::Crc32Des => 2,
        ChecksumType::Md4 => 3,
        ChecksumType::Md4Des => 4,
    }
}

/// Parses a checksum-type tag.
pub(crate) fn checksum_from_tag(t: u8) -> Result<ChecksumType, KrbError> {
    Ok(match t {
        1 => ChecksumType::Crc32,
        2 => ChecksumType::Crc32Des,
        3 => ChecksumType::Md4,
        4 => ChecksumType::Md4Des,
        _ => return Err(KrbError::Decode("unknown checksum type")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::rng::Drbg;

    fn sample() -> Authenticator {
        Authenticator::basic(Principal::user("pat", "ATHENA"), 0x0a000001, 123_456_789)
    }

    #[test]
    fn roundtrip_minimal() {
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            let a = sample();
            assert_eq!(Authenticator::decode(codec, &a.encode(codec)).unwrap(), a);
        }
    }

    #[test]
    fn roundtrip_full() {
        let a = Authenticator {
            cksum: Some(Checksum { ctype: ChecksumType::Crc32, value: vec![1, 2, 3, 4].into() }),
            service_binding: Some(Principal::service("hesiod", "db1", "ATHENA")),
            subkey: Some(0xdeadbeef),
            seq_init: Some(42),
            ..sample()
        };
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            assert_eq!(Authenticator::decode(codec, &a.encode(codec)).unwrap(), a);
        }
    }

    #[test]
    fn seal_roundtrip() {
        let mut rng = Drbg::new(4);
        let k = DesKey::from_u64(0x5555555555555555).with_odd_parity();
        let a = sample();
        let sealed = a.seal(Codec::Typed, EncLayer::V5Cbc { confounder: true }, &k, &mut rng).unwrap();
        assert_eq!(
            Authenticator::unseal(Codec::Typed, EncLayer::V5Cbc { confounder: true }, &k, &sealed).unwrap(),
            a
        );
    }

    /// The A11 type-confusion probe: under the legacy codec a sealed
    /// ticket can be *decoded* as an authenticator (fields misalign but
    /// parsing succeeds or fails only by accident); under the typed
    /// codec it is rejected deterministically.
    #[test]
    fn typed_codec_blocks_cross_decoding() {
        let t = crate::ticket::Ticket {
            flags: crate::flags::TicketFlags::empty(),
            client: Principal::user("pat", "ATHENA"),
            service: Principal::service("rlogin", "myhost", "ATHENA"),
            addr: Some(1),
            auth_time: 0,
            start_time: 0,
            end_time: 10,
            session_key: DesKey::from_u64(7),
            transited: vec![],
        };
        let bytes = t.encode(Codec::Typed);
        assert!(matches!(
            Authenticator::decode(Codec::Typed, &bytes),
            Err(KrbError::WrongType { .. })
        ));
    }

    #[test]
    fn checksum_tags_roundtrip() {
        for c in [ChecksumType::Crc32, ChecksumType::Crc32Des, ChecksumType::Md4, ChecksumType::Md4Des] {
            assert_eq!(checksum_from_tag(checksum_tag(c)).unwrap(), c);
        }
        assert!(checksum_from_tag(99).is_err());
    }
}
