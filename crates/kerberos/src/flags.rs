//! Ticket flags and KDC option bits (V5 Draft 3 vocabulary).

/// Flags recorded inside a ticket.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct TicketFlags(pub u16);

impl TicketFlags {
    /// May be forwarded to another address.
    pub const FORWARDABLE: u16 = 1 << 0;
    /// Was forwarded (the paper: "Kerberos has a flag bit to indicate
    /// that a ticket was forwarded, but does not include the original
    /// source").
    pub const FORWARDED: u16 = 1 << 1;
    /// Issued by the AS directly (password-authenticated).
    pub const INITIAL: u16 = 1 << 2;
    /// May be renewed.
    pub const RENEWABLE: u16 = 1 << 3;
    /// This ticket's session key is shared with another ticket
    /// (REUSE-SKEY). Draft 3 "explicitly warns against using tickets
    /// with DUPLICATE-SKEY set for authentication."
    pub const DUPLICATE_SKEY: u16 = 1 << 4;

    /// No flags.
    pub fn empty() -> Self {
        TicketFlags(0)
    }

    /// Tests a flag bit.
    pub fn has(self, bit: u16) -> bool {
        self.0 & bit != 0
    }

    /// Returns a copy with `bit` set.
    pub fn with(self, bit: u16) -> Self {
        TicketFlags(self.0 | bit)
    }
}

/// Options a client may request from the KDC.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KdcOptions(pub u16);

impl KdcOptions {
    /// Request a forwardable ticket.
    pub const FORWARDABLE: u16 = 1 << 0;
    /// Mark the issued ticket as forwarded (new address supplied).
    pub const FORWARDED: u16 = 1 << 1;
    /// Request a renewable ticket.
    pub const RENEWABLE: u16 = 1 << 2;
    /// Encrypt the new ticket in the session key of the enclosed
    /// additional ticket instead of the service key (the Draft 3 option
    /// at the heart of attack A9).
    pub const ENC_TKT_IN_SKEY: u16 = 1 << 3;
    /// Reuse the session key of the enclosed additional ticket (A10).
    pub const REUSE_SKEY: u16 = 1 << 4;
    /// Renew the presented (renewable) ticket instead of issuing for a
    /// new service.
    pub const RENEW: u16 = 1 << 5;

    /// No options.
    pub fn empty() -> Self {
        KdcOptions(0)
    }

    /// Tests an option bit.
    pub fn has(self, bit: u16) -> bool {
        self.0 & bit != 0
    }

    /// Returns a copy with `bit` set.
    pub fn with(self, bit: u16) -> Self {
        KdcOptions(self.0 | bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_ops() {
        let f = TicketFlags::empty().with(TicketFlags::INITIAL).with(TicketFlags::FORWARDED);
        assert!(f.has(TicketFlags::INITIAL));
        assert!(f.has(TicketFlags::FORWARDED));
        assert!(!f.has(TicketFlags::RENEWABLE));
    }

    #[test]
    fn option_ops() {
        let o = KdcOptions::empty().with(KdcOptions::ENC_TKT_IN_SKEY);
        assert!(o.has(KdcOptions::ENC_TKT_IN_SKEY));
        assert!(!o.has(KdcOptions::REUSE_SKEY));
        assert_eq!(KdcOptions::empty().0, 0);
    }
}
