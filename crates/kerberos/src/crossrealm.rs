//! Inter-realm authentication: realm hierarchies, routing, and the
//! cascading-trust problem.
//!
//! "If a user wishes to access a service in another realm, that user
//! must first obtain a ticket-granting ticket for that realm. This is
//! done by making the ticket-granting server in a realm the client of
//! another realm's TGS. ... there is no discussion of how a TGS can
//! determine which of its neighboring realms should be the next hop."
//!
//! [`RealmTopology`] implements the static-table routing the paper says
//! is the de-facto answer, so its limitations (stale/missing routes,
//! unauthenticated provisioning) are demonstrable; [`TrustPolicy`] lets
//! a server evaluate the transited path — and shows why "in the absence
//! of a global name space" a name-based policy is fragile.

use crate::client::{get_service_ticket, Credential, TgsParams};
use crate::config::ProtocolConfig;
use crate::error::KrbError;
use crate::principal::Principal;
use krb_crypto::rng::RandomSource;
use krb_trace::Value;
use simnet::{Endpoint, Network};
use std::collections::BTreeMap;

/// Static inter-realm routing tables: realm -> (destination realm ->
/// next-hop realm). "Should realm administrators rely on electronic
/// mail messages or telephone calls to set up their routing tables?"
#[derive(Clone, Debug, Default)]
pub struct RealmTopology {
    /// KDC endpoint of each realm.
    pub kdc_eps: BTreeMap<String, Endpoint>,
    /// `routes[realm]` maps a destination realm to the next hop (a realm
    /// that `realm` shares an inter-realm key with).
    pub routes: BTreeMap<String, BTreeMap<String, String>>,
}

impl RealmTopology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a realm's KDC endpoint.
    pub fn add_realm(&mut self, realm: &str, kdc: Endpoint) {
        self.kdc_eps.insert(realm.into(), kdc);
    }

    /// Adds a static route entry.
    pub fn add_route(&mut self, at: &str, dest: &str, next_hop: &str) {
        self.routes.entry(at.into()).or_default().insert(dest.into(), next_hop.into());
    }

    /// Computes the realm path from `src` to `dst` by following the
    /// static tables. Fails when a table entry is missing — the paper's
    /// scalability complaint made concrete.
    pub fn path(&self, src: &str, dst: &str) -> Result<Vec<String>, KrbError> {
        let mut path = vec![src.to_string()];
        let mut cur = src.to_string();
        while cur != dst {
            let next = self
                .routes
                .get(&cur)
                .and_then(|t| t.get(dst))
                .ok_or_else(|| KrbError::RealmPathRejected(format!("{cur} has no route to {dst}")))?
                .clone();
            if path.contains(&next) {
                return Err(KrbError::RealmPathRejected(format!("routing loop at {next}")));
            }
            path.push(next.clone());
            cur = next;
        }
        Ok(path)
    }
}

/// Obtains a credential for `service` in a remote realm by walking the
/// inter-realm path: TGT -> cross-realm TGT(s) -> service ticket.
/// Returns the final credential and the realms traversed.
#[allow(clippy::too_many_arguments)]
pub fn cross_realm_ticket(
    net: &mut Network,
    config: &ProtocolConfig,
    topo: &RealmTopology,
    client_ep: Endpoint,
    home_tgt: &Credential,
    service: &Principal,
    rng: &mut dyn RandomSource,
) -> Result<(Credential, Vec<String>), KrbError> {
    let home = home_tgt.client.realm.clone();
    let path = topo.path(&home, &service.realm)?;

    let trace = net.tracer();
    let span = trace.begin_span(
        "cross-realm",
        net.now().0,
        vec![
            ("client", Value::str(home_tgt.client.to_string())),
            ("service", Value::str(service.to_string())),
            ("path", Value::str(path.join(" -> "))),
        ],
    );

    // Walk hop by hop: at each realm's KDC, ask for a TGT of the next
    // realm; at the final realm, ask for the service ticket.
    let walk = |net: &mut Network, rng: &mut dyn RandomSource| -> Result<Credential, KrbError> {
        let mut cred = home_tgt.clone();
        for window in path.windows(2) {
            let (cur, next) = (&window[0], &window[1]);
            let kdc = *topo
                .kdc_eps
                .get(cur)
                .ok_or_else(|| KrbError::RealmPathRejected(format!("no KDC known for {cur}")))?;
            net.tracer().note(net.now().0, &format!("cross-realm hop: {cur} grants TGT for {next}"));
            let next_tgs = Principal::tgs(next);
            cred =
                get_service_ticket(net, config, client_ep, kdc, &cred, &next_tgs, TgsParams::default(), rng)?;
        }
        let final_kdc = *topo
            .kdc_eps
            .get(&service.realm)
            .ok_or_else(|| KrbError::RealmPathRejected(format!("no KDC known for {}", service.realm)))?;
        get_service_ticket(net, config, client_ep, final_kdc, &cred, service, TgsParams::default(), rng)
    };
    let result = walk(net, rng);
    trace.end_span(span, net.now().0, &home_tgt.client.name);
    let cred = result?;
    trace.counter("client.crossrealm_hops", &home_tgt.client.name, path.len().saturating_sub(1) as u64);
    Ok((cred, path))
}

/// A server-side trust policy over transited realm paths.
#[derive(Clone, Debug, Default)]
pub struct TrustPolicy {
    /// Realms whose transit taints a path.
    pub distrusted: Vec<String>,
}

impl TrustPolicy {
    /// Distrust nobody.
    pub fn permissive() -> Self {
        Self::default()
    }

    /// Distrust the named realms.
    pub fn distrusting(realms: &[&str]) -> Self {
        TrustPolicy { distrusted: realms.iter().map(|s| s.to_string()).collect() }
    }

    /// Evaluates a ticket's transited path. "To assess the validity of a
    /// request, a server needs global knowledge of the trustworthiness
    /// of all possible transit realms."
    pub fn evaluate(&self, transited: &[String]) -> Result<(), KrbError> {
        for r in transited {
            if self.distrusted.contains(r) {
                return Err(KrbError::RealmPathRejected(format!("distrusted transit realm {r}")));
            }
        }
        Ok(())
    }

    /// The paper's deeper point: names carry no global meaning. If a
    /// malicious realm *renames itself* to a trusted-sounding name in
    /// the path it reports, a name-based policy passes it. This helper
    /// demonstrates the bypass.
    pub fn evaluate_spoofable(&self, claimed_transited: &[String]) -> Result<(), KrbError> {
        self.evaluate(claimed_transited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> RealmTopology {
        // A hierarchy: LEAF.A - MID - ROOT - MID2 - LEAF.B, with static
        // routes pointing up/down the tree.
        let mut t = RealmTopology::new();
        for (i, r) in ["LEAF.A", "MID", "ROOT", "MID2", "LEAF.B"].iter().enumerate() {
            t.add_realm(r, Endpoint::new(simnet::Addr::new(10, 0, 9, i as u8 + 1), 88));
        }
        t.add_route("LEAF.A", "LEAF.B", "MID");
        t.add_route("MID", "LEAF.B", "ROOT");
        t.add_route("ROOT", "LEAF.B", "MID2");
        t.add_route("MID2", "LEAF.B", "LEAF.B");
        t
    }

    #[test]
    fn path_resolution() {
        let t = topo();
        assert_eq!(
            t.path("LEAF.A", "LEAF.B").unwrap(),
            vec!["LEAF.A", "MID", "ROOT", "MID2", "LEAF.B"]
        );
        assert_eq!(t.path("MID2", "LEAF.B").unwrap(), vec!["MID2", "LEAF.B"]);
        assert_eq!(t.path("LEAF.A", "LEAF.A").unwrap(), vec!["LEAF.A"]);
    }

    #[test]
    fn missing_route_fails() {
        let t = topo();
        assert!(matches!(t.path("LEAF.B", "LEAF.A"), Err(KrbError::RealmPathRejected(_))));
    }

    #[test]
    fn routing_loop_detected() {
        let mut t = RealmTopology::new();
        t.add_route("A", "C", "B");
        t.add_route("B", "C", "A");
        assert!(matches!(t.path("A", "C"), Err(KrbError::RealmPathRejected(_))));
    }

    #[test]
    fn trust_policy() {
        let p = TrustPolicy::distrusting(&["EVIL.CORP"]);
        assert!(p.evaluate(&["MID".into(), "ROOT".into()]).is_ok());
        assert!(p.evaluate(&["MID".into(), "EVIL.CORP".into()]).is_err());
        assert!(TrustPolicy::permissive().evaluate(&["EVIL.CORP".into()]).is_ok());
    }

    #[test]
    fn name_based_trust_is_spoofable() {
        // A malicious transit realm reports itself under an innocuous
        // name; the name-based policy cannot tell.
        let p = TrustPolicy::distrusting(&["EVIL.CORP"]);
        let honest_path = ["EVIL.CORP".to_string()];
        let lying_path = ["TOTALLY.LEGIT".to_string()];
        assert!(p.evaluate_spoofable(&honest_path).is_err());
        assert!(p.evaluate_spoofable(&lying_path).is_ok());
    }
}
