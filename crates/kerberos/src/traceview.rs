//! Rendering protocol traffic in the paper's message notation, plus the
//! redaction helper every trace-emission site uses for key material.
//!
//! The narrative renderer turns a wire-hop trace into the step notation
//! Bellovin & Merritt use throughout the paper:
//!
//! ```text
//! c -> tgs: {A_c}K_{c,tgs}, {T_{c,tgs}}K_tgs, s, n
//! ```
//!
//! [`PaperLens`] maps simulated host names onto the paper's actors
//! (`c`, `kdc`/`tgs`, `s`) and wire kinds onto the corresponding message
//! shorthand. [`fingerprint`] is the ONLY sanctioned way key material
//! may appear in a trace: an 8-hex-character MD4 tag that identifies a
//! key across events without revealing it (krb-lint S004 enforces that
//! emission sites never pass raw secrets).

use crate::messages::WireKind;
use krb_crypto::des::DesKey;
use krb_crypto::md4::md4;
use krb_trace::Lens;

/// A short, non-invertible identifier for a key: the first four bytes
/// of `MD4(key bytes)`, lowercase hex. Two events carrying the same
/// fingerprint used the same key; nothing about the key itself leaks.
pub fn fingerprint(key: &DesKey) -> String {
    let digest = md4(&key.to_u64().to_be_bytes());
    let mut out = String::with_capacity(8);
    for b in &digest[..4] {
        let hi = b >> 4;
        let lo = b & 0xf;
        for n in [hi, lo] {
            out.push(char::from_digit(u32::from(n), 16).unwrap_or('?'));
        }
    }
    out
}

/// Describes a framed protocol message in the paper's notation, keyed
/// on the cleartext wire kind. Unknown or unframed payloads render as
/// an opaque byte count.
pub fn describe_wire(payload: &[u8]) -> String {
    let kind = payload.first().copied().and_then(WireKind::from_u8);
    let n = payload.len();
    match kind {
        Some(WireKind::AsReq) => "AS-REQ  c, tgs, n".into(),
        Some(WireKind::AsRep) => "AS-REP  {K_{c,tgs}, n}K_c, {T_{c,tgs}}K_tgs".into(),
        Some(WireKind::TgsReq) => "TGS-REQ {A_c}K_{c,tgs}, {T_{c,tgs}}K_tgs, s, n".into(),
        Some(WireKind::TgsRep) => "TGS-REP {K_{c,s}, n}K_{c,tgs}, {T_{c,s}}K_s".into(),
        Some(WireKind::ApReq) => "AP-REQ  {A_c}K_{c,s}, {T_{c,s}}K_s".into(),
        Some(WireKind::ApRep) => "AP-REP  {t+1}K_{c,s}".into(),
        Some(WireKind::Err) => "KRB-ERROR".into(),
        Some(WireKind::Safe) => "KRB-SAFE  data, MAC".into(),
        Some(WireKind::Priv) => "KRB-PRIV  {data}K_{c,s}".into(),
        Some(WireKind::ChallengeResp) => "CHALLENGE-RESP  {n+1}K_{c,s}".into(),
        Some(WireKind::AppData) => format!("APP-DATA  <{n} bytes, unprotected>"),
        None => format!("<{n} bytes>"),
    }
}

/// Maps simulated hosts onto the paper's actor shorthand:
///
/// - `ws-<user>.*` (workstations) render as `c`,
/// - `kerberos.*` (realm KDCs) render as `kdc`,
/// - `<name>host.*` and other service hosts render as `s`,
/// - anything else keeps its own first label.
pub struct PaperLens;

impl Lens for PaperLens {
    fn actor(&self, host: &str) -> String {
        let first = host.split('.').next().unwrap_or(host);
        // A dotted-quad address is not a dotted hostname: keep it whole.
        if !first.is_empty() && first.chars().all(|c| c.is_ascii_digit()) {
            return host.to_string();
        }
        if first.starts_with("ws-") || first == "ws" {
            "c".into()
        } else if first == "kerberos" || first.starts_with("kdc") {
            "kdc".into()
        } else if first.ends_with("host") || first.ends_with("server") {
            "s".into()
        } else {
            first.to_string()
        }
    }

    fn message(&self, payload: &[u8]) -> String {
        describe_wire(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::frame;

    #[test]
    fn fingerprint_is_stable_and_redacted() {
        let k = DesKey::from_u64(0x0123_4567_89ab_cdef);
        let f = fingerprint(&k);
        assert_eq!(f.len(), 8);
        assert_eq!(f, fingerprint(&k), "deterministic");
        assert_ne!(f, fingerprint(&DesKey::from_u64(1)));
        // The raw key bytes never appear.
        assert!(!f.contains("0123"));
    }

    #[test]
    fn wire_kinds_render_paper_notation() {
        let req = frame(WireKind::TgsReq, vec![1, 2, 3]);
        assert!(describe_wire(&req).contains("{A_c}K_{c,tgs}"));
        assert!(describe_wire(&[]).contains("<0 bytes>"));
        assert!(describe_wire(&[200, 1, 2]).contains("<3 bytes>"));
    }

    #[test]
    fn paper_lens_maps_actors() {
        let l = PaperLens;
        assert_eq!(l.actor("ws-pat.mit.edu"), "c");
        assert_eq!(l.actor("kerberos.athena"), "kdc");
        assert_eq!(l.actor("nfshost.athena"), "s");
        assert_eq!(l.actor("gateway"), "gateway");
    }
}
