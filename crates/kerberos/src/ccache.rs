//! Credential caches and their storage-location exposure model.
//!
//! "There is some question about where keys should be cached. Since all
//! of the Project Athena machines have local disks, the original code
//! used /tmp. But this is highly insecure on diskless workstations,
//! where /tmp exists on a file server; accordingly, a modification was
//! made to store keys in shared memory. However, there is no guarantee
//! that shared memory is not paged; if this entails network traffic, an
//! intruder can capture these keys."
//!
//! A [`CredCache`] stores [`Credential`]s and models where the bytes
//! physically live. Writing to an NFS-backed location *actually sends
//! the serialized cache over the simulated network*, so the wiretap
//! attack (A12) captures real keys, not a flag.

use crate::client::Credential;
use crate::encoding::{len_u32, Decoder, Encoder};
use crate::error::KrbError;
use crate::principal::Principal;
use crate::ticket::{put_principal, take_principal};
use krb_crypto::des::DesKey;
use simnet::{Endpoint, Network};

/// Where the credential cache bytes live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheLocation {
    /// /tmp on a local disk: exposed to anyone with physical access to
    /// the workstation, but not to the network.
    TmpLocalDisk,
    /// /tmp on an NFS file server: every write crosses the network in
    /// the clear.
    TmpNfs {
        /// The file server endpoint writes go to.
        file_server: Endpoint,
    },
    /// Shared memory that the OS may page — to a network paging device
    /// on a diskless workstation.
    SharedMemoryPageable {
        /// The paging server endpoint.
        pager: Endpoint,
    },
    /// Pinned memory, wiped at logout. The workstation-friendly choice.
    WipedMemory,
}

/// A user's credential cache.
pub struct CredCache {
    /// Whose credentials these are.
    pub owner: Principal,
    /// Where the bytes live.
    pub location: CacheLocation,
    entries: Vec<Credential>,
    wiped: bool,
}

/// Serializes credentials the way a 1990 cache file did: in the clear.
pub fn serialize_credentials(entries: &[Credential]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(len_u32(entries.len()));
    for c in entries {
        put_principal(&mut e, &c.client);
        put_principal(&mut e, &c.service);
        e.put_bytes(&c.sealed_ticket);
        e.put_u64(c.session_key.to_u64());
        e.put_u64(c.end_time);
    }
    e.finish()
}

/// Parses a serialized cache — this is what the attacker does with
/// captured NFS writes.
pub fn deserialize_credentials(data: &[u8]) -> Result<Vec<Credential>, KrbError> {
    let mut d = Decoder::new(data);
    let n = d.take_u32()? as usize;
    if n > 4096 {
        return Err(KrbError::Decode("cache too large"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Credential {
            client: take_principal(&mut d)?,
            service: take_principal(&mut d)?,
            sealed_ticket: d.take_bytes()?,
            session_key: DesKey::from_u64(d.take_u64()?),
            end_time: d.take_u64()?,
        });
    }
    Ok(out)
}

impl CredCache {
    /// An empty cache.
    pub fn new(owner: Principal, location: CacheLocation) -> Self {
        CredCache { owner, location, entries: Vec::new(), wiped: false }
    }

    /// Stores a credential, flushing to backing storage per the
    /// location model. `my_ep` is the workstation's network endpoint
    /// (used when the backing store is remote).
    pub fn store(&mut self, net: &mut Network, my_ep: Endpoint, cred: Credential) -> Result<(), KrbError> {
        self.wiped = false;
        self.entries.push(cred);
        self.flush(net, my_ep)
    }

    /// Flushes the cache to its backing store.
    fn flush(&self, net: &mut Network, my_ep: Endpoint) -> Result<(), KrbError> {
        let bytes = serialize_credentials(&self.entries);
        match self.location {
            CacheLocation::TmpLocalDisk | CacheLocation::WipedMemory => Ok(()),
            CacheLocation::TmpNfs { file_server } => {
                // An NFS WRITE of the cache file, in the clear.
                let mut payload = b"NFSWRITE /tmp/tkt_".to_vec();
                payload.extend_from_slice(self.owner.name.as_bytes());
                payload.push(b' ');
                payload.extend_from_slice(&bytes);
                net.send_oneway(my_ep, file_server, payload).map_err(KrbError::from)
            }
            CacheLocation::SharedMemoryPageable { pager } => {
                // A page-out of the segment holding the keys.
                let mut payload = b"PAGEOUT ".to_vec();
                payload.extend_from_slice(&bytes);
                net.send_oneway(my_ep, pager, payload).map_err(KrbError::from)
            }
        }
    }

    /// Looks up a credential for `service`.
    pub fn get(&self, service: &Principal) -> Option<&Credential> {
        if self.wiped {
            return None;
        }
        self.entries.iter().find(|c| &c.service == service)
    }

    /// All live credentials.
    pub fn entries(&self) -> &[Credential] {
        if self.wiped {
            &[]
        } else {
            &self.entries
        }
    }

    /// Logout: "Kerberos attempts to wipe out old keys at logoff time,
    /// leaving the attacker to sift through the debris."
    pub fn wipe(&mut self) {
        self.entries.clear();
        self.wiped = true;
    }

    /// What an attacker who can read the backing store *after logout*
    /// recovers. On a single-user workstation with wiping, nothing; on
    /// a multi-user host (concurrent access) or unwiped disk, the live
    /// entries.
    pub fn theft_surface(&self, attacker_is_concurrent: bool) -> Vec<Credential> {
        match self.location {
            CacheLocation::WipedMemory => {
                if attacker_is_concurrent {
                    // "With a multi-user computer ... an attacker has
                    // concurrent access to the keys if there are flaws in
                    // the host's security."
                    self.entries.clone()
                } else {
                    Vec::new()
                }
            }
            CacheLocation::TmpLocalDisk => {
                // Disk contents persist; wiping helps only if it
                // happened.
                if self.wiped {
                    Vec::new()
                } else {
                    self.entries.clone()
                }
            }
            // Remote backing stores already leaked on the wire; local
            // reads work too.
            CacheLocation::TmpNfs { .. } | CacheLocation::SharedMemoryPageable { .. } => self.entries.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(n: &str) -> Credential {
        Credential {
            client: Principal::user("pat", "R"),
            service: Principal::service(n, "h", "R"),
            sealed_ticket: vec![1, 2, 3],
            session_key: DesKey::from_u64(0xABCD),
            end_time: 99,
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let creds = vec![cred("nfs"), cred("mail")];
        let bytes = serialize_credentials(&creds);
        let back = deserialize_credentials(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].session_key, creds[0].session_key);
        assert_eq!(back[1].service, creds[1].service);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut net = Network::new();
        net.add_host(simnet::Host::new("ws", vec![simnet::Addr::new(1, 1, 1, 1)]));
        let ep = Endpoint::new(simnet::Addr::new(1, 1, 1, 1), 100);
        let mut cc = CredCache::new(Principal::user("pat", "R"), CacheLocation::WipedMemory);
        cc.store(&mut net, ep, cred("nfs")).unwrap();
        assert!(cc.get(&Principal::service("nfs", "h", "R")).is_some());
        cc.wipe();
        assert!(cc.get(&Principal::service("nfs", "h", "R")).is_none());
        assert!(cc.theft_surface(false).is_empty());
    }

    #[test]
    fn wiped_memory_exposed_only_to_concurrent_attacker() {
        let mut net = Network::new();
        net.add_host(simnet::Host::new("ws", vec![simnet::Addr::new(1, 1, 1, 1)]));
        let ep = Endpoint::new(simnet::Addr::new(1, 1, 1, 1), 100);
        let mut cc = CredCache::new(Principal::user("pat", "R"), CacheLocation::WipedMemory);
        cc.store(&mut net, ep, cred("nfs")).unwrap();
        assert!(cc.theft_surface(false).is_empty());
        assert_eq!(cc.theft_surface(true).len(), 1);
    }

    #[test]
    fn nfs_cache_writes_cross_the_wire() {
        let mut net = Network::new();
        net.add_host(simnet::Host::new("ws", vec![simnet::Addr::new(1, 1, 1, 1)]));
        // A "file server" that just swallows writes.
        struct Sink;
        impl simnet::Service for Sink {
            fn handle(&mut self, _: &mut simnet::ServiceCtx, _: &[u8], _: Endpoint) -> Option<Vec<u8>> {
                None
            }
        }
        let mut fs = simnet::Host::new("fs", vec![simnet::Addr::new(1, 1, 1, 2)]);
        fs.bind(2049, Box::new(Sink));
        net.add_host(fs);

        let ep = Endpoint::new(simnet::Addr::new(1, 1, 1, 1), 100);
        let fs_ep = Endpoint::new(simnet::Addr::new(1, 1, 1, 2), 2049);
        let mut cc =
            CredCache::new(Principal::user("pat", "R"), CacheLocation::TmpNfs { file_server: fs_ep });
        cc.store(&mut net, ep, cred("nfs")).unwrap();

        // The wiretap (traffic log) now contains the serialized cache,
        // session key included.
        let leak = net
            .traffic_log()
            .into_iter()
            .find(|r| r.dgram.payload.starts_with(b"NFSWRITE"))
            .expect("cache write on the wire");
        let idx = leak.dgram.payload.iter().position(|&b| b == b' ').unwrap();
        // Skip "NFSWRITE /tmp/tkt_pat " — find the second space.
        let rest = &leak.dgram.payload[idx + 1..];
        let idx2 = rest.iter().position(|&b| b == b' ').unwrap();
        let stolen = deserialize_credentials(&rest[idx2 + 1..]).unwrap();
        assert_eq!(stolen[0].session_key, DesKey::from_u64(0xABCD));
    }
}
