//! Tickets: `{T_c,s}K_s`.
//!
//! "A ticket contains assorted information identifying the principal,
//! encrypted in the private key of the service."

use crate::encoding::{len_u32, Codec, Decoder, Encoder, MsgType};
use crate::enclayer::EncLayer;
use crate::error::KrbError;
use crate::flags::TicketFlags;
use crate::principal::Principal;
use krb_crypto::des::{DesKey, ScheduledKey};
use krb_crypto::rng::RandomSource;

/// Encodes a principal into an encoder.
pub(crate) fn put_principal(e: &mut Encoder, p: &Principal) {
    e.put_str(&p.name).put_str(&p.instance).put_str(&p.realm);
}

/// Decodes a principal.
pub(crate) fn take_principal(d: &mut Decoder<'_>) -> Result<Principal, KrbError> {
    Ok(Principal { name: d.take_str()?, instance: d.take_str()?, realm: d.take_str()? })
}

/// The plaintext contents of a ticket.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ticket {
    /// Ticket flags.
    pub flags: TicketFlags,
    /// The client the ticket vouches for.
    pub client: Principal,
    /// The service it is good for.
    pub service: Principal,
    /// The client network address the ticket is bound to; `None` if
    /// omitted (permitted in V5 — the paper discusses whether the field
    /// buys anything at all).
    pub addr: Option<u32>,
    /// When initial authentication happened (µs, local KDC clock).
    pub auth_time: u64,
    /// Start of validity (µs).
    pub start_time: u64,
    /// End of validity (µs).
    pub end_time: u64,
    /// The (multi-)session key.
    pub session_key: DesKey,
    /// Realms transited to obtain this ticket (V5 inter-realm path).
    pub transited: Vec<String>,
}

impl Ticket {
    /// Serializes the plaintext fields.
    pub fn encode(&self, codec: Codec) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(u32::from(self.flags.0));
        put_principal(&mut e, &self.client);
        put_principal(&mut e, &self.service);
        match self.addr {
            Some(a) => e.put_u8(1).put_u32(a),
            None => e.put_u8(0),
        };
        e.put_u64(self.auth_time).put_u64(self.start_time).put_u64(self.end_time);
        e.put_u64(self.session_key.to_u64());
        e.put_u32(len_u32(self.transited.len()));
        for r in &self.transited {
            e.put_str(r);
        }
        codec.wrap(MsgType::Ticket, e.finish())
    }

    /// Parses the plaintext fields.
    pub fn decode(codec: Codec, data: &[u8]) -> Result<Ticket, KrbError> {
        let body = codec.open(MsgType::Ticket, data)?;
        let mut d = Decoder::new(body);
        let flags = TicketFlags(d.field("flags").take_u32()? as u16);
        let client = take_principal(d.field("client"))?;
        let service = take_principal(d.field("service"))?;
        let addr = match d.field("addr").take_u8()? {
            0 => None,
            1 => Some(d.take_u32()?),
            _ => return Err(d.fail("bad addr option")),
        };
        let auth_time = d.field("auth-time").take_u64()?;
        let start_time = d.field("start-time").take_u64()?;
        let end_time = d.field("end-time").take_u64()?;
        let session_key = DesKey::from_u64(d.field("session-key").take_u64()?);
        let n = d.field("transited").take_u32()? as usize;
        if n > 64 {
            return Err(d.fail("transited list too long"));
        }
        let mut transited = Vec::with_capacity(n);
        for _ in 0..n {
            transited.push(d.take_str()?);
        }
        Ok(Ticket {
            flags,
            client,
            service,
            addr,
            auth_time,
            start_time,
            end_time,
            session_key,
            transited,
        })
    }

    /// Encrypts the ticket under `sealing_key` (normally the service's
    /// private key; under ENC-TKT-IN-SKEY, a session key).
    pub fn seal(
        &self,
        codec: Codec,
        layer: EncLayer,
        sealing_key: &DesKey,
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        layer.seal(sealing_key, 0, &self.encode(codec), rng)
    }

    /// [`Ticket::seal`] with a precomputed schedule (the KDC holds one
    /// for its TGS key).
    pub fn seal_with(
        &self,
        codec: Codec,
        layer: EncLayer,
        sealing_key: &ScheduledKey,
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        layer.seal_with(sealing_key, 0, &self.encode(codec), rng)
    }

    /// Decrypts and parses a sealed ticket.
    pub fn unseal(
        codec: Codec,
        layer: EncLayer,
        sealing_key: &DesKey,
        data: &[u8],
    ) -> Result<Ticket, KrbError> {
        let pt = layer.open(sealing_key, 0, data)?;
        Ticket::decode(codec, &pt)
    }

    /// [`Ticket::unseal`] with a precomputed schedule.
    pub fn unseal_with(
        codec: Codec,
        layer: EncLayer,
        sealing_key: &ScheduledKey,
        data: &[u8],
    ) -> Result<Ticket, KrbError> {
        let pt = layer.open_with(sealing_key, 0, data)?;
        Ticket::decode(codec, &pt)
    }

    /// Validity check against a local clock reading (µs).
    pub fn valid_at(&self, now_us: u64, skew_us: u64) -> bool {
        now_us + skew_us >= self.start_time && now_us <= self.end_time + skew_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krb_crypto::rng::Drbg;

    fn sample() -> Ticket {
        Ticket {
            flags: TicketFlags::empty().with(TicketFlags::INITIAL),
            client: Principal::user("pat", "ATHENA"),
            service: Principal::service("rlogin", "myhost", "ATHENA"),
            addr: Some(0x0a000001),
            auth_time: 1_000_000,
            start_time: 1_000_000,
            end_time: 301_000_000,
            session_key: DesKey::from_u64(0x1122334455667788),
            transited: vec![],
        }
    }

    #[test]
    fn codec_roundtrip_all() {
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            let t = sample();
            assert_eq!(Ticket::decode(codec, &t.encode(codec)).unwrap(), t);
        }
    }

    #[test]
    fn roundtrip_no_addr_and_transited() {
        let mut t = sample();
        t.addr = None;
        t.transited = vec!["REALM.A".into(), "REALM.B".into()];
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            assert_eq!(Ticket::decode(codec, &t.encode(codec)).unwrap(), t);
        }
    }

    #[test]
    fn seal_unseal() {
        let mut rng = Drbg::new(1);
        let ks = DesKey::from_u64(0x0123456789abcdef).with_odd_parity();
        let t = sample();
        for layer in [EncLayer::V4Pcbc, EncLayer::V5Cbc { confounder: true }, EncLayer::HardenedCbc] {
            let sealed = t.seal(Codec::Typed, layer, &ks, &mut rng).unwrap();
            assert_eq!(Ticket::unseal(Codec::Typed, layer, &ks, &sealed).unwrap(), t);
        }
    }

    #[test]
    fn unseal_wrong_key_fails() {
        let mut rng = Drbg::new(2);
        let ks = DesKey::from_u64(0x0123456789abcdef).with_odd_parity();
        let other = DesKey::from_u64(0xfedcba9876543210).with_odd_parity();
        let sealed = sample().seal(Codec::Typed, EncLayer::V5Cbc { confounder: true }, &ks, &mut rng).unwrap();
        assert!(Ticket::unseal(Codec::Typed, EncLayer::V5Cbc { confounder: true }, &other, &sealed).is_err());
    }

    #[test]
    fn validity_window() {
        let t = sample();
        let skew = 300_000_000; // 5 minutes in µs
        assert!(t.valid_at(1_000_000, skew));
        assert!(t.valid_at(301_000_000, skew));
        // Within skew of expiry: still accepted.
        assert!(t.valid_at(301_000_000 + skew, skew));
        // Beyond skew: rejected.
        assert!(!t.valid_at(301_000_000 + skew + 1, skew));
        // Before start but within skew: accepted.
        assert!(t.valid_at(0, skew));
        assert!(!Ticket { start_time: 400_000_000_000, ..sample() }.valid_at(0, skew));
    }

    #[test]
    fn sealed_tickets_differ_per_encryption_with_confounder() {
        let mut rng = Drbg::new(3);
        let ks = DesKey::from_u64(0x0123456789abcdef).with_odd_parity();
        let t = sample();
        let layer = EncLayer::V5Cbc { confounder: true };
        let a = t.seal(Codec::Typed, layer, &ks, &mut rng).unwrap();
        let b = t.seal(Codec::Typed, layer, &ks, &mut rng).unwrap();
        assert_ne!(a, b);
    }
}
