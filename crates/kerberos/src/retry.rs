//! Client-side retry with exponential backoff, deterministic jitter,
//! and replica failover.
//!
//! Real Kerberos clients sit on lossy UDP and talk to a master KDC plus
//! replicated slaves; ours sat on a perfect wire with single-shot
//! exchanges. This module is the thin harness that turns a one-shot
//! exchange closure into a bounded-retry loop driven by
//! [`crate::config::RetryPolicy`]:
//!
//! - Each attempt gets a fresh timeout window; between attempts the
//!   client backs off exponentially with jitter derived from the
//!   exchange nonce (never from a wall clock), so every run replays
//!   byte-for-byte.
//! - Attempt errors are split into [`AttemptErr::Transient`] (worth
//!   retrying: the network ate something, the server is mid-restart)
//!   and [`AttemptErr::Fatal`] (a real protocol verdict: wrong
//!   password, replay detected, policy denial).
//! - Failover is the *caller's* loop: callers pass a target list and
//!   pick `targets[attempt % targets.len()]` per attempt, walking the
//!   replica set the way a real client walks its krb.conf KDC list.
//!
//! The transient/fatal split has a security-relevant subtlety: on a
//! perfect network, a reply that fails to decode or verify is *evidence*
//! (of an attack, of a wrong password) and must surface immediately —
//! attacks distinguish configurations by exactly these failures. Only
//! when a fault plan is installed can a garbled reply be the network's
//! doing, so [`reply_transient`] consults
//! [`simnet::Network::faults_enabled`] before reclassifying.

use crate::config::RetryPolicy;
use crate::error::KrbError;
use krb_trace::{EventKind, Value};
use simnet::{NetError, Network, SimDuration};

/// One attempt's failure, classified for the retry loop.
#[derive(Clone, Debug)]
pub enum AttemptErr {
    /// Worth retrying: loss, timeout, crash window, fail-closed server.
    Transient(KrbError),
    /// A definitive protocol outcome; retrying cannot change it.
    Fatal(KrbError),
    /// The admission tier said [`KrbError::ServerBusy`]: back off and
    /// retry *without* consuming the attempt/failover budget. A busy
    /// gateway is not a dead replica — treating its refusals as attempt
    /// failures would walk a client off a healthy (merely loaded)
    /// cluster and exhaust its replica list during any flash crowd.
    Busy,
}

impl AttemptErr {
    /// The underlying error, either way.
    pub fn into_inner(self) -> KrbError {
        match self {
            AttemptErr::Transient(e) | AttemptErr::Fatal(e) => e,
            AttemptErr::Busy => KrbError::ServerBusy,
        }
    }
}

impl From<NetError> for AttemptErr {
    fn from(e: NetError) -> Self {
        match e {
            // The environment ate a datagram or the host is rebooting:
            // retry. `ReplyLost` is ambiguous (the server DID process
            // the request) — callers must only retry exchanges that are
            // idempotent or freshly re-stamped.
            NetError::Dropped | NetError::ReplyLost | NetError::TimedOut | NetError::HostDown(_) => {
                AttemptErr::Transient(KrbError::Net(e.to_string()))
            }
            // Config errors (no such host/port): retrying is hopeless.
            NetError::NoRoute(_) | NetError::PortClosed(_) | NetError::NoReply => {
                AttemptErr::Fatal(KrbError::Net(e.to_string()))
            }
        }
    }
}

impl From<KrbError> for AttemptErr {
    fn from(e: KrbError) -> Self {
        match e {
            // The server said "try later" (fail-closed startup window).
            KrbError::FailClosed => AttemptErr::Transient(KrbError::FailClosed),
            // The gateway said "busy": congestion, not failure.
            KrbError::ServerBusy => AttemptErr::Busy,
            other => AttemptErr::Fatal(other),
        }
    }
}

impl From<krb_crypto::CryptoError> for AttemptErr {
    fn from(e: krb_crypto::CryptoError) -> Self {
        AttemptErr::Fatal(KrbError::from(e))
    }
}

/// Classifies a *reply-processing* failure: transient when an installed
/// fault plan could have garbled the reply (corruption, stale
/// duplicates), fatal on a perfect network where the failure is genuine
/// evidence. [`KrbError::FailClosed`] is transient either way.
pub fn reply_transient(net: &Network, e: KrbError) -> AttemptErr {
    match e {
        // The gateway shed the request: always the busy path, faults or
        // not — load shedding is a server decision, not network damage.
        KrbError::ServerBusy => AttemptErr::Busy,
        KrbError::FailClosed => AttemptErr::Transient(KrbError::FailClosed),
        e if net.faults_enabled() => AttemptErr::Transient(e),
        e => AttemptErr::Fatal(e),
    }
}

/// Runs `attempt` up to `policy.attempts` times. The closure receives
/// the network and the 0-based attempt number (callers use it to pick a
/// replica and to re-stamp per-attempt material). Between transient
/// failures the simulated clock advances by the policy's backoff, and
/// held datagrams get a chance to land.
///
/// On a network with NO fault plan installed the budget collapses to a
/// single attempt and the attempt's own error propagates unchanged:
/// perfect-wire runs (every existing test, table, and attack trace) are
/// byte-for-byte identical to the pre-retry implementation.
pub fn run<T>(
    net: &mut Network,
    policy: &RetryPolicy,
    jitter_seed: u64,
    mut attempt: impl FnMut(&mut Network, u32) -> Result<T, AttemptErr>,
) -> Result<T, KrbError> {
    let budget = if net.faults_enabled() { policy.attempts.max(1) } else { 1 };
    // Busy refusals from the admission tier get their own (larger)
    // budget and do NOT consume `a` — the failover index — so a loaded
    // gateway never looks like a string of dead replicas. Unlike the
    // attempt budget, this engages even on a perfect wire: the gateway
    // sheds load under flash crowds with no fault plan installed.
    let busy_cap = policy.attempts.max(1) * 4;
    let mut busy_retries: u32 = 0;
    let mut last: Option<KrbError> = None;
    let mut a = 0;
    while a < budget {
        match attempt(net, a) {
            Ok(v) => return Ok(v),
            Err(AttemptErr::Fatal(e)) => return Err(e),
            Err(AttemptErr::Busy) => {
                busy_retries += 1;
                if busy_retries >= busy_cap {
                    return Err(KrbError::RetriesExhausted {
                        attempts: busy_retries,
                        last: KrbError::ServerBusy.to_string(),
                    });
                }
                let delay = policy.delay_us(busy_retries, jitter_seed);
                let tr = net.tracer();
                tr.emit(
                    EventKind::Retry,
                    net.now().0,
                    vec![
                        ("attempt", Value::U64(u64::from(a))),
                        ("budget", Value::U64(u64::from(budget))),
                        ("backoff_us", Value::U64(delay)),
                        ("error", Value::str(KrbError::ServerBusy.to_string())),
                    ],
                );
                tr.counter("client.busy_retries", "all", 1);
                net.advance(SimDuration(delay));
                net.pump();
                // `a` unchanged: the next try goes to the same target.
            }
            Err(AttemptErr::Transient(e)) => {
                if a + 1 < budget {
                    // About to back off and retry: record what drove it.
                    let delay = policy.delay_us(a + 1, jitter_seed);
                    let tr = net.tracer();
                    tr.emit(
                        EventKind::Retry,
                        net.now().0,
                        vec![
                            ("attempt", Value::U64(u64::from(a))),
                            ("budget", Value::U64(u64::from(budget))),
                            ("backoff_us", Value::U64(delay)),
                            ("error", Value::str(e.to_string())),
                        ],
                    );
                    tr.counter("client.retries", "all", 1);
                    net.advance(SimDuration(delay));
                    net.pump();
                }
                last = Some(e);
                a += 1;
            }
        }
    }
    if budget == 1 {
        // Single-shot semantics: surface the attempt's raw error.
        return Err(last.unwrap_or(KrbError::Net("no attempt ran".into())));
    }
    Err(KrbError::RetriesExhausted {
        attempts: budget,
        last: last.map(|e| e.to_string()).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::standard()
    }

    #[test]
    fn first_success_wins() {
        let mut net = Network::new();
        let r = run(&mut net, &policy(), 1, |_, a| Ok::<u32, AttemptErr>(a));
        assert_eq!(r.unwrap(), 0);
    }

    #[test]
    fn transient_retries_then_succeeds() {
        let mut net = Network::new();
        net.set_fault_plan(simnet::FaultPlan::new(1));
        let t0 = net.now();
        let r = run(&mut net, &policy(), 1, |_, a| {
            if a < 2 {
                Err(AttemptErr::from(NetError::Dropped))
            } else {
                Ok(a)
            }
        });
        assert_eq!(r.unwrap(), 2);
        assert!(net.now() > t0, "backoff advanced the clock");
    }

    #[test]
    fn fatal_short_circuits() {
        let mut net = Network::new();
        let mut calls = 0;
        let r: Result<(), _> = run(&mut net, &policy(), 1, |_, _| {
            calls += 1;
            Err(AttemptErr::Fatal(KrbError::Replay))
        });
        assert_eq!(r, Err(KrbError::Replay));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_reports_last_error() {
        let mut net = Network::new();
        net.set_fault_plan(simnet::FaultPlan::new(1));
        let r: Result<(), _> = run(&mut net, &policy(), 1, |_, _| {
            Err(AttemptErr::from(NetError::TimedOut))
        });
        match r {
            Err(KrbError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, policy().attempts);
                assert!(last.contains("timed out"), "last = {last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn no_fault_plan_means_single_shot() {
        let mut net = Network::new();
        let mut calls = 0;
        let r: Result<(), _> = run(&mut net, &policy(), 1, |_, _| {
            calls += 1;
            Err(AttemptErr::from(NetError::Dropped))
        });
        assert_eq!(calls, 1, "no retries on a perfect wire");
        assert_eq!(r, Err(KrbError::Net(NetError::Dropped.to_string())));
    }

    #[test]
    fn busy_retries_even_on_a_perfect_wire() {
        // No fault plan: transient errors get one shot, but a typed
        // server-busy keeps retrying with backoff — load shedding is a
        // server decision, not a network fault.
        let mut net = Network::new();
        let t0 = net.now();
        let mut calls = 0;
        let r = run(&mut net, &policy(), 1, |_, a| {
            calls += 1;
            assert_eq!(a, 0, "busy never advances the failover index");
            if calls < 4 {
                Err(AttemptErr::from(KrbError::ServerBusy))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 4);
        assert!(net.now() > t0, "busy retries backed off");
    }

    #[test]
    fn busy_does_not_consume_the_failover_budget() {
        let mut net = Network::new();
        net.set_fault_plan(simnet::FaultPlan::new(1));
        let mut seen = Vec::new();
        let mut busy_served = false;
        let r = run(&mut net, &policy(), 1, |_, a| {
            seen.push(a);
            match (a, busy_served) {
                // First attempt: two busy refusals, then a transient.
                (0, false) => {
                    if seen.iter().filter(|&&x| x == 0).count() < 3 {
                        Err(AttemptErr::Busy)
                    } else {
                        busy_served = true;
                        Err(AttemptErr::from(NetError::Dropped))
                    }
                }
                (1, _) => Ok(a),
                _ => Err(AttemptErr::from(NetError::Dropped)),
            }
        });
        assert_eq!(r.unwrap(), 1);
        // Attempt 0 ran three times (two busy + one transient) before
        // the failover index moved to 1.
        assert_eq!(seen, vec![0, 0, 0, 1]);
    }

    #[test]
    fn sustained_busy_exhausts_its_own_cap() {
        let mut net = Network::new();
        let mut calls = 0u32;
        let r: Result<(), _> = run(&mut net, &policy(), 1, |_, _| {
            calls += 1;
            Err(AttemptErr::Busy)
        });
        match r {
            Err(KrbError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, policy().attempts.max(1) * 4);
                assert!(last.contains("server busy"), "last = {last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(calls, policy().attempts.max(1) * 4);
    }

    #[test]
    fn reply_failures_fatal_without_faults_transient_with() {
        let mut net = Network::new();
        assert!(matches!(
            reply_transient(&net, KrbError::BadChecksum),
            AttemptErr::Fatal(_)
        ));
        net.set_fault_plan(simnet::FaultPlan::new(1));
        assert!(matches!(
            reply_transient(&net, KrbError::BadChecksum),
            AttemptErr::Transient(_)
        ));
        // Fail-closed is transient either way: the server itself asked
        // for a retry.
        let clean = Network::new();
        assert!(matches!(
            reply_transient(&clean, KrbError::FailClosed),
            AttemptErr::Transient(_)
        ));
    }
}
