//! Kerberos protocol knowledge for the `krb-gateway` admission tier.
//!
//! The gateway crate is protocol-agnostic; this module supplies the
//! [`krb_gateway::Frontend`] implementation that teaches it to:
//!
//! - recognize AS requests and extract the principal being guessed at
//!   (so preauth-storm penalty windows track the paper's E2 surface),
//! - recognize `PREAUTH_FAILED` errors and successful AS replies coming
//!   back from the KDC (strike vs. clear), and
//! - build the typed [`err_code::SERVER_BUSY`] refusal that sends a
//!   well-behaved client into backoff instead of a timeout.

use crate::database::shard_for;
use crate::encoding::Codec;
use crate::messages::{deframe, err_code, AsReq, KrbErrorMsg, WireKind};
use krb_gateway::{Frontend, Gateway, ReplyClass, RequestClass};

/// The Kerberos [`Frontend`]: parses with the realm's wire codec.
#[derive(Clone, Copy, Debug)]
pub struct KrbFrontend {
    codec: Codec,
}

impl KrbFrontend {
    pub fn new(codec: Codec) -> Self {
        KrbFrontend { codec }
    }
}

/// The concrete gateway type deployed by the testbed.
pub type KrbGateway = Gateway<KrbFrontend>;

impl Frontend for KrbFrontend {
    fn classify_request(&self, req: &[u8]) -> RequestClass {
        match AsReq::decode(self.codec, req) {
            Ok(as_req) => RequestClass::AsRequest { principal: as_req.client.to_string() },
            // TGS traffic, app data, garbage: rate-limited and queued,
            // but no principal to penalize.
            Err(_) => RequestClass::Other,
        }
    }

    fn classify_reply(&self, reply: &[u8]) -> ReplyClass {
        match deframe(reply) {
            Ok((WireKind::AsRep, _)) => ReplyClass::Success,
            Ok((WireKind::Err, _)) => match KrbErrorMsg::decode(self.codec, reply) {
                // Only a definitive wrong-guess verdict is a strike.
                // CHALLENGE_REQUIRED / PREAUTH_REQUIRED are normal
                // steps of a hardened login, and TRY_LATER says nothing
                // about the password.
                Ok(e) if e.code == err_code::PREAUTH_FAILED => ReplyClass::PreauthFailure,
                _ => ReplyClass::Other,
            },
            _ => ReplyClass::Other,
        }
    }

    fn busy_reply(&self, reason: &'static str) -> Vec<u8> {
        KrbErrorMsg { code: err_code::SERVER_BUSY, text: reason.to_string(), challenge: None }
            .encode(self.codec)
    }

    /// AS requests pin the shard that owns the client's key — the same
    /// [`shard_for`] the sharded database used to place it, so the
    /// request always reaches a KDC able to answer. TGS traffic returns
    /// `None`: the TGS and service keys are replicated into every
    /// shard, so any shard can serve it.
    fn route_shard(&self, req: &[u8], shard_count: usize) -> Option<usize> {
        match AsReq::decode(self.codec, req) {
            Ok(as_req) => Some(shard_for(&as_req.client, shard_count)),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::flags::KdcOptions;
    use crate::messages::AsRep;
    use crate::principal::Principal;

    fn codec() -> Codec {
        ProtocolConfig::hardened().codec
    }

    fn as_req_for(name: &str) -> Vec<u8> {
        AsReq {
            client: Principal::user(name, "ATHENA.MIT.EDU"),
            service: Principal::tgs("ATHENA.MIT.EDU"),
            nonce: 7,
            lifetime_us: 1,
            addr: 0,
            options: KdcOptions::empty(),
            padata: Vec::new(),
        }
        .encode(codec())
    }

    #[test]
    fn as_requests_classify_with_their_principal() {
        let fe = KrbFrontend::new(codec());
        match fe.classify_request(&as_req_for("pat")) {
            RequestClass::AsRequest { principal } => {
                assert!(principal.starts_with("pat"), "principal = {principal}");
            }
            other => panic!("expected AsRequest, got {other:?}"),
        }
        assert_eq!(fe.classify_request(b"not kerberos"), RequestClass::Other);
        assert_eq!(fe.classify_request(&[]), RequestClass::Other);
    }

    #[test]
    fn replies_classify_preauth_failure_vs_success() {
        let fe = KrbFrontend::new(codec());
        let fail = KrbErrorMsg {
            code: err_code::PREAUTH_FAILED,
            text: "preauthentication failed".into(),
            challenge: None,
        }
        .encode(codec());
        assert_eq!(fe.classify_reply(&fail), ReplyClass::PreauthFailure);

        // A challenge demand is a normal hardened-login step, not a
        // strike.
        let challenge = KrbErrorMsg {
            code: err_code::CHALLENGE_REQUIRED,
            text: "respond".into(),
            challenge: Some(42),
        }
        .encode(codec());
        assert_eq!(fe.classify_reply(&challenge), ReplyClass::Other);

        let ok = AsRep { challenge_r: None, dh_public: None, enc_part: vec![1, 2, 3] }
            .encode(codec());
        assert_eq!(fe.classify_reply(&ok), ReplyClass::Success);

        assert_eq!(fe.classify_reply(b"junk"), ReplyClass::Other);
    }

    #[test]
    fn busy_reply_is_a_typed_server_busy_error() {
        let fe = KrbFrontend::new(codec());
        let reply = fe.busy_reply("queue full");
        let e = KrbErrorMsg::decode(codec(), &reply).expect("decodes");
        assert_eq!(e.code, err_code::SERVER_BUSY);
        assert_eq!(e.text, "queue full");
    }
}
