//! Authenticated sessions: KRB_SAFE and KRB_PRIV message processing.
//!
//! The encrypted part of a Draft-3 KRB_PRIV message "has the form
//! X = (DATA, timestamp+direction, hostaddress, PAD)" — data first, which
//! is what gives the chosen-plaintext splice (A7) its purchase. The
//! hardened discipline instead uses the separated encryption layer with
//! per-message chained IVs and sequence numbers (appendix
//! recommendations).

use crate::config::{Freshness, ProtocolConfig};
use crate::enclayer::EncLayer;
use crate::encoding::{be_array, len_u32};
use crate::error::KrbError;
use crate::messages::{frame, WireKind};
use crate::principal::Principal;
use krb_crypto::checksum::{self, Checksum};
use krb_crypto::des::{DesKey, ScheduledKey};
use krb_crypto::rng::RandomSource;
use std::collections::BTreeSet;

/// Direction of a session message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Client to server.
    ClientToServer = 0,
    /// Server to client.
    ServerToClient = 1,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }
}

/// The plaintext of a KRB_PRIV encrypted part (Draft-3 layout).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrivPart {
    /// Application data.
    pub data: Vec<u8>,
    /// Timestamp (µs) or sequence number, per the freshness mechanism.
    pub ts_or_seq: u64,
    /// Message direction.
    pub direction: Direction,
    /// Sender address.
    pub addr: u32,
}

/// Encodes the Draft-3 data-first layout:
/// `[DATA][ts u64][dir u8][addr u32][pad][len u32]`, padded so the total
/// is block-aligned with the length word in the final four bytes.
pub fn encode_priv_draft3(part: &PrivPart) -> Vec<u8> {
    let mut v = part.data.clone();
    v.extend_from_slice(&part.ts_or_seq.to_be_bytes());
    v.push(part.direction as u8);
    v.extend_from_slice(&part.addr.to_be_bytes());
    while !(v.len() + 4).is_multiple_of(8) {
        v.push(0);
    }
    v.extend_from_slice(&len_u32(part.data.len()).to_be_bytes());
    v
}

/// Decodes the Draft-3 layout.
pub fn decode_priv_draft3(pt: &[u8]) -> Result<PrivPart, KrbError> {
    if pt.len() < 4 + 13 {
        return Err(KrbError::Decode("priv part too short"));
    }
    let len = u32::from_be_bytes(be_array::<4>(&pt[pt.len() - 4..])) as usize;
    if len + 13 + 4 > pt.len() {
        return Err(KrbError::Decode("priv length out of range"));
    }
    let data = pt[..len].to_vec();
    let mut off = len;
    let ts_or_seq = u64::from_be_bytes(be_array::<8>(&pt[off..off + 8]));
    off += 8;
    let direction = match pt[off] {
        0 => Direction::ClientToServer,
        1 => Direction::ServerToClient,
        _ => return Err(KrbError::Decode("bad direction")),
    };
    off += 1;
    let addr = u32::from_be_bytes(be_array::<4>(&pt[off..off + 4]));
    Ok(PrivPart { data, ts_or_seq, direction, addr })
}

/// Encodes the hardened layout (length-framed fields; the layer adds its
/// own framing and MAC).
pub fn encode_priv_hardened(part: &PrivPart) -> Vec<u8> {
    let mut v = len_u32(part.data.len()).to_be_bytes().to_vec();
    v.extend_from_slice(&part.data);
    v.extend_from_slice(&part.ts_or_seq.to_be_bytes());
    v.push(part.direction as u8);
    v.extend_from_slice(&part.addr.to_be_bytes());
    v
}

/// Decodes the hardened layout.
pub fn decode_priv_hardened(pt: &[u8]) -> Result<PrivPart, KrbError> {
    if pt.len() < 4 {
        return Err(KrbError::Decode("priv part too short"));
    }
    let len = u32::from_be_bytes(be_array::<4>(&pt[..4])) as usize;
    if 4 + len + 13 > pt.len() {
        return Err(KrbError::Decode("priv length out of range"));
    }
    let data = pt[4..4 + len].to_vec();
    let mut off = 4 + len;
    let ts_or_seq = u64::from_be_bytes(be_array::<8>(&pt[off..off + 8]));
    off += 8;
    let direction = match pt[off] {
        0 => Direction::ClientToServer,
        1 => Direction::ServerToClient,
        _ => return Err(KrbError::Decode("bad direction")),
    };
    off += 1;
    let addr = u32::from_be_bytes(be_array::<4>(&pt[off..off + 4]));
    Ok(PrivPart { data, ts_or_seq, direction, addr })
}

/// A parsed KRB_SAFE body: the cleartext part plus its checksum trailer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SafeFrame {
    /// The cleartext part (hardened length-framed layout).
    pub part: PrivPart,
    /// Raw checksum-type tag byte from the trailer.
    pub cksum_tag: u8,
    /// Checksum value from the trailer.
    pub cksum: Vec<u8>,
}

impl SafeFrame {
    /// Byte length of the part prefix the checksum covers.
    pub fn covered_len(&self) -> usize {
        4 + self.part.data.len() + 8 + 1 + 4
    }

    /// Re-encodes the body (part followed by `[tag][len u32][cksum]`
    /// trailer) — the exact inverse of [`parse_safe_body`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = encode_priv_hardened(&self.part);
        out.push(self.cksum_tag);
        out.extend_from_slice(&len_u32(self.cksum.len()).to_be_bytes());
        out.extend_from_slice(&self.cksum);
        out
    }
}

/// Total parser for a KRB_SAFE body (everything after the wire frame
/// header): `[hardened priv part][tag u8][len u32][cksum]`. Returns a
/// typed error on every malformed input — never panics, never indexes
/// past the slice.
pub fn parse_safe_body(body: &[u8]) -> Result<SafeFrame, KrbError> {
    let part = decode_priv_hardened(body)?;
    let mut off = 4 + part.data.len() + 8 + 1 + 4;
    let tag = *body.get(off).ok_or(KrbError::Decode("safe trailer missing"))?;
    off += 1;
    let clen = u32::from_be_bytes(be_array::<4>(
        body.get(off..off + 4).ok_or(KrbError::Decode("safe trailer truncated"))?,
    )) as usize;
    off += 4;
    let cksum =
        body.get(off..off + clen).ok_or(KrbError::Decode("safe checksum truncated"))?.to_vec();
    if off + clen != body.len() {
        return Err(KrbError::Decode("safe trailing bytes"));
    }
    Ok(SafeFrame { part, cksum_tag: tag, cksum })
}

/// One endpoint's view of an authenticated session.
pub struct Session {
    /// Peer identity (for application logic).
    pub peer: Principal,
    /// The working key: the multi-session key, or the negotiated true
    /// session key when subkeys are in use.
    pub key: DesKey,
    /// Which freshness mechanism is active.
    pub freshness: Freshness,
    /// Clock-skew limit, µs (timestamp mode).
    pub skew_us: u64,
    /// Which direction this endpoint sends in.
    pub send_dir: Direction,
    layer: EncLayer,
    /// The working key with its schedule expanded once at session
    /// establishment — every seal/open on this session reuses it.
    skey: ScheduledKey,
    /// Timestamp mode: recently-seen values (grows with traffic — E7
    /// measures this).
    recent: BTreeSet<u64>,
    /// Sequence mode: next sequence number to send.
    send_seq: u64,
    /// Sequence mode: next expected receive sequence number.
    recv_seq: u64,
    /// Messages rejected (for attack evidence).
    pub rejected: u64,
}

impl Session {
    /// Creates a session endpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        peer: Principal,
        key: DesKey,
        config: &ProtocolConfig,
        send_dir: Direction,
        send_seq: u64,
        recv_seq: u64,
    ) -> Self {
        Session {
            peer,
            key,
            freshness: config.freshness,
            skew_us: config.clock_skew_us,
            send_dir,
            layer: config.priv_layer,
            skey: ScheduledKey::new(key),
            recent: BTreeSet::new(),
            send_seq,
            recv_seq,
            rejected: 0,
        }
    }

    /// Negotiates the true session key from the multi-session key and
    /// both subkey contributions (appendix: "an exclusive-or of the
    /// multisession key ... a randomly-generated field in the
    /// authenticator, and a similar field in the reply message").
    pub fn negotiate_key(multi: &DesKey, client_subkey: u64, server_subkey: u64) -> DesKey {
        DesKey::from_u64(multi.to_u64() ^ client_subkey ^ server_subkey).with_odd_parity()
    }

    /// Seals application data as a KRB_PRIV wire message. `now_us` is
    /// the sender's local clock (ignored in sequence mode).
    pub fn send_priv(
        &mut self,
        data: &[u8],
        now_us: u64,
        my_addr: u32,
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        let (ts_or_seq, iv) = match self.freshness {
            Freshness::Timestamp => (now_us, 0),
            Freshness::SequenceNumbers => {
                let s = self.send_seq;
                self.send_seq = self.send_seq.wrapping_add(1);
                (s, s)
            }
        };
        let part = PrivPart { data: data.to_vec(), ts_or_seq, direction: self.send_dir, addr: my_addr };
        let pt = match self.layer {
            EncLayer::HardenedCbc => encode_priv_hardened(&part),
            _ => encode_priv_draft3(&part),
        };
        let sealed = self.layer.seal_with(&self.skey, iv, &pt, rng)?;
        Ok(frame(WireKind::Priv, sealed))
    }

    /// Opens a received KRB_PRIV wire message and applies the freshness
    /// and direction checks.
    pub fn recv_priv(&mut self, wire: &[u8], now_us: u64) -> Result<Vec<u8>, KrbError> {
        let (kind, sealed) = crate::messages::deframe(wire)?;
        if kind != WireKind::Priv {
            return Err(KrbError::Decode("not a KRB_PRIV message"));
        }
        let iv = match self.freshness {
            Freshness::Timestamp => 0,
            Freshness::SequenceNumbers => self.recv_seq,
        };
        let pt = self.layer.open_with(&self.skey, iv, sealed).inspect_err(|_| {
            self.rejected += 1;
        })?;
        let part = match self.layer {
            EncLayer::HardenedCbc => decode_priv_hardened(&pt),
            _ => decode_priv_draft3(&pt),
        }
        .inspect_err(|_| {
            self.rejected += 1;
        })?;

        if part.direction != self.send_dir.flip() {
            self.rejected += 1;
            return Err(KrbError::Decode("wrong direction"));
        }
        match self.freshness {
            Freshness::Timestamp => {
                if part.ts_or_seq.abs_diff(now_us) > self.skew_us {
                    self.rejected += 1;
                    return Err(KrbError::SkewExceeded {
                        diff_us: part.ts_or_seq.abs_diff(now_us),
                        limit_us: self.skew_us,
                    });
                }
                if !self.recent.insert(part.ts_or_seq) {
                    self.rejected += 1;
                    return Err(KrbError::Replay);
                }
            }
            Freshness::SequenceNumbers => {
                if part.ts_or_seq != self.recv_seq {
                    self.rejected += 1;
                    return Err(KrbError::Replay);
                }
                self.recv_seq = self.recv_seq.wrapping_add(1);
            }
        }
        Ok(part.data)
    }

    /// Seals application data as a KRB_SAFE wire message (integrity
    /// only; data travels in the clear).
    pub fn send_safe(
        &mut self,
        data: &[u8],
        now_us: u64,
        my_addr: u32,
        config: &ProtocolConfig,
    ) -> Result<Vec<u8>, KrbError> {
        let ts_or_seq = match self.freshness {
            Freshness::Timestamp => now_us,
            Freshness::SequenceNumbers => {
                let s = self.send_seq;
                self.send_seq = self.send_seq.wrapping_add(1);
                s
            }
        };
        let part = PrivPart { data: data.to_vec(), ts_or_seq, direction: self.send_dir, addr: my_addr };
        let body = encode_priv_hardened(&part);
        let key_opt = config.checksum.is_keyed().then_some(&self.key);
        let cksum = checksum::compute(config.checksum, key_opt, &body)?;
        let mut out = body;
        out.push(crate::authenticator::checksum_tag(config.checksum));
        out.extend_from_slice(&(cksum.value.len() as u32).to_be_bytes());
        out.extend_from_slice(&cksum.value);
        Ok(frame(WireKind::Safe, out))
    }

    /// Opens a KRB_SAFE wire message.
    pub fn recv_safe(&mut self, wire: &[u8], now_us: u64, config: &ProtocolConfig) -> Result<Vec<u8>, KrbError> {
        let (kind, body) = crate::messages::deframe(wire)?;
        if kind != WireKind::Safe {
            return Err(KrbError::Decode("not a KRB_SAFE message"));
        }
        let frame = parse_safe_body(body).inspect_err(|_| {
            self.rejected += 1;
        })?;
        let part = frame.part.clone();
        let ctype = crate::authenticator::checksum_from_tag(frame.cksum_tag)?;
        if ctype != config.checksum {
            self.rejected += 1;
            return Err(KrbError::BadChecksum);
        }
        let key_opt = ctype.is_keyed().then_some(&self.key);
        let claimed = Checksum { ctype, value: frame.cksum.clone().into() };
        if checksum::verify(&claimed, key_opt, &body[..frame.covered_len()]).is_err() {
            self.rejected += 1;
            return Err(KrbError::BadChecksum);
        }

        if part.direction != self.send_dir.flip() {
            self.rejected += 1;
            return Err(KrbError::Decode("wrong direction"));
        }
        match self.freshness {
            Freshness::Timestamp => {
                if part.ts_or_seq.abs_diff(now_us) > self.skew_us {
                    self.rejected += 1;
                    return Err(KrbError::SkewExceeded {
                        diff_us: part.ts_or_seq.abs_diff(now_us),
                        limit_us: self.skew_us,
                    });
                }
                if !self.recent.insert(part.ts_or_seq) {
                    self.rejected += 1;
                    return Err(KrbError::Replay);
                }
            }
            Freshness::SequenceNumbers => {
                if part.ts_or_seq != self.recv_seq {
                    self.rejected += 1;
                    return Err(KrbError::Replay);
                }
                self.recv_seq = self.recv_seq.wrapping_add(1);
            }
        }
        Ok(part.data)
    }

    /// Timestamp-cache size (state cost, E7).
    pub fn timestamp_cache_entries(&self) -> usize {
        self.recent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use krb_crypto::rng::Drbg;

    fn pair(config: &ProtocolConfig) -> (Session, Session) {
        let key = DesKey::from_u64(0x2468ACE013579BDF).with_odd_parity();
        let client = Session::new(
            Principal::service("svc", "host", "R"),
            key,
            config,
            Direction::ClientToServer,
            100,
            500,
        );
        let server =
            Session::new(Principal::user("pat", "R"), key, config, Direction::ServerToClient, 500, 100);
        (client, server)
    }

    #[test]
    fn priv_roundtrip_all_configs() {
        let mut rng = Drbg::new(1);
        for config in ProtocolConfig::presets() {
            let (mut c, mut s) = pair(&config);
            let wire = c.send_priv(b"ls /mail", 1_000_000, 7, &mut rng).unwrap();
            let got = s.recv_priv(&wire, 1_000_100).unwrap();
            assert_eq!(got, b"ls /mail", "config {}", config.name);
            // And the reply direction.
            let wire = s.send_priv(b"inbox: 3 messages", 1_000_200, 9, &mut rng).unwrap();
            assert_eq!(c.recv_priv(&wire, 1_000_300).unwrap(), b"inbox: 3 messages");
        }
    }

    #[test]
    fn safe_roundtrip_all_configs() {
        for config in ProtocolConfig::presets() {
            let (mut c, mut s) = pair(&config);
            let wire = c.send_safe(b"balance?", 5_000, 7, &config).unwrap();
            assert_eq!(s.recv_safe(&wire, 5_100, &config).unwrap(), b"balance?");
        }
    }

    #[test]
    fn safe_without_trailer_is_rejected_not_a_panic() {
        // A valid part with the checksum trailer sliced off used to
        // index past the body (`body[off]`); the total parser rejects.
        let config = ProtocolConfig::hardened();
        let (_c, mut s) = pair(&config);
        let part = PrivPart {
            data: b"naked".to_vec(),
            ts_or_seq: 100,
            direction: Direction::ClientToServer,
            addr: 7,
        };
        let wire = frame(WireKind::Safe, encode_priv_hardened(&part));
        assert!(s.recv_safe(&wire, 5_000, &config).is_err());
        assert!(parse_safe_body(&encode_priv_hardened(&part)).is_err());
    }

    #[test]
    fn safe_body_parser_roundtrips() {
        let config = ProtocolConfig::hardened();
        let (mut c, _s) = pair(&config);
        let wire = c.send_safe(b"pay alice 10", 5_000, 7, &config).unwrap();
        let (_, body) = crate::messages::deframe(&wire).unwrap();
        let parsed = parse_safe_body(body).unwrap();
        assert_eq!(parsed.part.data, b"pay alice 10");
        assert_eq!(parsed.encode(), body);
    }

    #[test]
    fn safe_detects_tampering_with_strong_checksum() {
        let config = ProtocolConfig::hardened();
        let (mut c, mut s) = pair(&config);
        let mut wire = c.send_safe(b"pay alice 10", 5_000, 7, &config).unwrap();
        // Flip a data byte ("alice" -> "alicf").
        let idx = wire.windows(5).position(|w| w == b"alice").unwrap() + 4;
        wire[idx] ^= 1;
        assert!(s.recv_safe(&wire, 5_100, &config).is_err());
    }

    #[test]
    fn priv_replay_rejected_within_session() {
        let mut rng = Drbg::new(2);
        for config in ProtocolConfig::presets() {
            let (mut c, mut s) = pair(&config);
            let wire = c.send_priv(b"cmd", 1_000, 7, &mut rng).unwrap();
            s.recv_priv(&wire, 1_100).unwrap();
            assert!(s.recv_priv(&wire, 1_200).is_err(), "config {}", config.name);
        }
    }

    #[test]
    fn cross_stream_replay_succeeds_with_shared_key_timestamps() {
        // A13: two sessions share the multi-session key (no subkey
        // negotiation) and use timestamps. A message from session 1
        // replays into session 2: each session's cache is private.
        let mut rng = Drbg::new(3);
        let config = ProtocolConfig::v5_draft3();
        let (mut c1, _s1) = pair(&config);
        let (_c2, mut s2) = pair(&config);
        let wire = c1.send_priv(b"delete archive", 1_000, 7, &mut rng).unwrap();
        // Replayed into the *other* session: accepted.
        assert_eq!(s2.recv_priv(&wire, 1_100).unwrap(), b"delete archive");
    }

    #[test]
    fn cross_stream_replay_fails_with_sequence_numbers() {
        let mut rng = Drbg::new(4);
        let config = ProtocolConfig::hardened();
        let key = DesKey::from_u64(0x2468ACE013579BDF).with_odd_parity();
        // Two sessions with distinct random initial sequence numbers, as
        // negotiated per-session.
        let mut c1 =
            Session::new(Principal::user("x", "R"), key, &config, Direction::ClientToServer, 1000, 1);
        let mut s2 =
            Session::new(Principal::user("x", "R"), key, &config, Direction::ServerToClient, 1, 7777);
        let wire = c1.send_priv(b"delete archive", 1_000, 7, &mut rng).unwrap();
        assert!(s2.recv_priv(&wire, 1_100).is_err());
    }

    #[test]
    fn stale_timestamp_rejected() {
        let mut rng = Drbg::new(5);
        let config = ProtocolConfig::v4();
        let (mut c, mut s) = pair(&config);
        let wire = c.send_priv(b"old", 1_000_000, 7, &mut rng).unwrap();
        // Received 10 minutes later: outside the 5-minute skew.
        assert!(matches!(
            s.recv_priv(&wire, 1_000_000 + 600_000_000),
            Err(KrbError::SkewExceeded { .. })
        ));
    }

    #[test]
    fn sequence_gap_detected() {
        let mut rng = Drbg::new(6);
        let config = ProtocolConfig::hardened();
        let (mut c, mut s) = pair(&config);
        let w1 = c.send_priv(b"one", 0, 7, &mut rng).unwrap();
        let w2 = c.send_priv(b"two", 0, 7, &mut rng).unwrap();
        // Drop w1; w2 arrives with an unexpected sequence number —
        // deletion is *detected*, which timestamps cannot do.
        drop(w1);
        assert!(s.recv_priv(&w2, 100).is_err());
    }

    #[test]
    fn negotiated_key_mixes_all_contributions() {
        let multi = DesKey::from_u64(0xAAAA).with_odd_parity();
        // Note: DES parity occupies bit 0 of each byte, so contributions
        // must differ above the parity bits to yield distinct keys (real
        // subkeys are random u64s, where this is overwhelmingly likely).
        let k1 = Session::negotiate_key(&multi, 0x0200, 0x0400);
        let k2 = Session::negotiate_key(&multi, 0x0200, 0x0800);
        let k3 = Session::negotiate_key(&multi, 0x1000, 0x0400);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        // Compatibility: zero subkeys give back (reparitied) multi key.
        assert_eq!(Session::negotiate_key(&multi, 0, 0), multi.with_odd_parity());
    }

    #[test]
    fn draft3_layout_roundtrip() {
        for dlen in [0usize, 1, 7, 8, 9, 100] {
            let part = PrivPart {
                data: vec![0x5a; dlen],
                ts_or_seq: 123_456,
                direction: Direction::ServerToClient,
                addr: 0x0a000001,
            };
            let enc = encode_priv_draft3(&part);
            assert_eq!(enc.len() % 8, 0, "dlen {dlen}");
            assert_eq!(decode_priv_draft3(&enc).unwrap(), part);
        }
    }

    #[test]
    fn timestamp_cache_grows_sequence_does_not() {
        let mut rng = Drbg::new(7);
        let ts_cfg = ProtocolConfig::v5_draft3();
        let seq_cfg = ProtocolConfig::hardened();
        let (mut c1, mut s1) = pair(&ts_cfg);
        let (mut c2, mut s2) = pair(&seq_cfg);
        for i in 0..100u64 {
            let w = c1.send_priv(b"m", 1_000 + i, 7, &mut rng).unwrap();
            s1.recv_priv(&w, 1_000 + i).unwrap();
            let w = c2.send_priv(b"m", 1_000 + i, 7, &mut rng).unwrap();
            s2.recv_priv(&w, 1_000 + i).unwrap();
        }
        assert_eq!(s1.timestamp_cache_entries(), 100);
        assert_eq!(s2.timestamp_cache_entries(), 0);
    }
}
