//! Concrete application-server behaviors: the services the paper's
//! attack scenarios need.

use crate::appserver::AppLogic;
use crate::principal::Principal;
use std::collections::BTreeMap;

/// Echo with identity prefix, for smoke tests.
pub struct EchoLogic;

impl AppLogic for EchoLogic {
    fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8> {
        let mut v = format!("[{}] ", client).into_bytes();
        v.extend_from_slice(cmd);
        v
    }
}

/// A simple per-user file store. Commands:
/// `PUT <name> <bytes>`, `GET <name>`, `DEL <name>`, `LIST`.
#[derive(Default)]
pub struct FileServerLogic {
    /// (owner, name) -> contents.
    pub files: BTreeMap<(String, String), Vec<u8>>,
    /// Deletions performed, for attack forensics.
    pub deletions: Vec<(String, String)>,
}

impl FileServerLogic {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

fn split_cmd(cmd: &[u8]) -> (Vec<u8>, Vec<u8>) {
    match cmd.iter().position(|&b| b == b' ') {
        Some(i) => (cmd[..i].to_vec(), cmd[i + 1..].to_vec()),
        None => (cmd.to_vec(), Vec::new()),
    }
}

impl AppLogic for FileServerLogic {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8> {
        let user = client.name.clone();
        let (verb, rest) = split_cmd(cmd);
        match verb.as_slice() {
            b"PUT" => {
                let (name, data) = split_cmd(&rest);
                let name = String::from_utf8_lossy(&name).into_owned();
                self.files.insert((user, name), data);
                b"OK".to_vec()
            }
            b"GET" => {
                let name = String::from_utf8_lossy(&rest).into_owned();
                match self.files.get(&(user, name)) {
                    Some(d) => d.clone(),
                    None => b"ENOENT".to_vec(),
                }
            }
            b"DEL" => {
                let name = String::from_utf8_lossy(&rest).into_owned();
                self.deletions.push((user.clone(), name.clone()));
                match self.files.remove(&(user, name)) {
                    Some(_) => b"OK".to_vec(),
                    None => b"ENOENT".to_vec(),
                }
            }
            b"LIST" => {
                let mut names: Vec<&str> =
                    self.files.keys().filter(|(o, _)| *o == user).map(|(_, n)| n.as_str()).collect();
                names.sort_unstable();
                names.join("\n").into_bytes()
            }
            _ => b"EBADCMD".to_vec(),
        }
    }
}

/// A mail server: the paper's example of a service "susceptible to
/// chosen plaintext attacks" — anyone may deposit bytes that the victim
/// later reads back encrypted under the victim's (multi-)session key.
/// Commands: `SEND <user> <bytes>` (sender may be anyone), `READ <n>`
/// (returns the raw bytes of message n), `COUNT`.
#[derive(Default)]
pub struct MailServerLogic {
    /// user -> messages.
    pub boxes: BTreeMap<String, Vec<Vec<u8>>>,
}

impl MailServerLogic {
    /// Empty spool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AppLogic for MailServerLogic {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8> {
        let (verb, rest) = split_cmd(cmd);
        match verb.as_slice() {
            b"SEND" => {
                let (to, body) = split_cmd(&rest);
                let to = String::from_utf8_lossy(&to).into_owned();
                self.boxes.entry(to).or_default().push(body);
                b"QUEUED".to_vec()
            }
            b"READ" => {
                let n: usize = String::from_utf8_lossy(&rest).trim().parse().unwrap_or(0);
                match self.boxes.get(&client.name).and_then(|msgs| msgs.get(n)) {
                    // The chosen-plaintext surface: attacker-authored
                    // bytes come back verbatim as the DATA of a KRB_PRIV
                    // message.
                    Some(m) => m.clone(),
                    None => b"ENOMSG".to_vec(),
                }
            }
            b"COUNT" => {
                let n = self.boxes.get(&client.name).map_or(0, Vec::len);
                n.to_string().into_bytes()
            }
            _ => b"EBADCMD".to_vec(),
        }
    }
}

/// A backup server sharing its storage namespace with the file server —
/// the REUSE-SKEY redirect victim: "an attacker might redirect some
/// requests to destroy archival copies of files being edited."
/// Commands: `ARCHIVE <name> <bytes>`, `DESTROY <name>`, `COUNT`.
#[derive(Default)]
pub struct BackupServerLogic {
    /// (owner, name) -> archived contents.
    pub archives: BTreeMap<(String, String), Vec<u8>>,
    /// Archive destructions, for attack forensics.
    pub destroyed: Vec<(String, String)>,
}

impl BackupServerLogic {
    /// Empty archive.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AppLogic for BackupServerLogic {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8> {
        let user = client.name.clone();
        let (verb, rest) = split_cmd(cmd);
        match verb.as_slice() {
            b"ARCHIVE" => {
                let (name, data) = split_cmd(&rest);
                let name = String::from_utf8_lossy(&name).into_owned();
                self.archives.insert((user, name), data);
                b"ARCHIVED".to_vec()
            }
            // `DEL` is the file-server verb; the backup server honors
            // it too (shared protocol lineage) — which is what makes the
            // REUSE-SKEY redirect (A10) destructive.
            b"DESTROY" | b"DEL" => {
                let name = String::from_utf8_lossy(&rest).into_owned();
                self.destroyed.push((user.clone(), name.clone()));
                self.archives.remove(&(user, name));
                b"DESTROYED".to_vec()
            }
            b"COUNT" => self.archives.len().to_string().into_bytes(),
            _ => b"EBADCMD".to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat() -> Principal {
        Principal::user("pat", "R")
    }

    #[test]
    fn file_server_crud() {
        let mut fs = FileServerLogic::new();
        assert_eq!(fs.on_command(&pat(), b"PUT thesis.tex \\documentclass"), b"OK");
        assert_eq!(fs.on_command(&pat(), b"GET thesis.tex"), b"\\documentclass");
        assert_eq!(fs.on_command(&pat(), b"LIST"), b"thesis.tex");
        assert_eq!(fs.on_command(&pat(), b"DEL thesis.tex"), b"OK");
        assert_eq!(fs.on_command(&pat(), b"GET thesis.tex"), b"ENOENT");
        assert_eq!(fs.deletions.len(), 1);
    }

    #[test]
    fn file_server_isolates_users() {
        let mut fs = FileServerLogic::new();
        fs.on_command(&pat(), b"PUT secret.txt mine");
        let sam = Principal::user("sam", "R");
        assert_eq!(fs.on_command(&sam, b"GET secret.txt"), b"ENOENT");
    }

    #[test]
    fn mail_send_and_read() {
        let mut m = MailServerLogic::new();
        let sender = Principal::user("zach", "R");
        assert_eq!(m.on_command(&sender, b"SEND pat hello pat"), b"QUEUED");
        assert_eq!(m.on_command(&pat(), b"COUNT"), b"1");
        assert_eq!(m.on_command(&pat(), b"READ 0"), b"hello pat");
        assert_eq!(m.on_command(&pat(), b"READ 7"), b"ENOMSG");
    }

    #[test]
    fn mail_preserves_arbitrary_bytes() {
        // The chosen-plaintext surface must be byte-exact.
        let mut m = MailServerLogic::new();
        let payload = [0u8, 255, 1, 2, 3, b' ', 9, 8];
        let mut cmd = b"SEND pat ".to_vec();
        cmd.extend_from_slice(&payload);
        m.on_command(&Principal::user("zach", "R"), &cmd);
        assert_eq!(m.on_command(&pat(), b"READ 0"), payload);
    }

    #[test]
    fn backup_destroy() {
        let mut b = BackupServerLogic::new();
        b.on_command(&pat(), b"ARCHIVE thesis.tex v1");
        assert_eq!(b.on_command(&pat(), b"COUNT"), b"1");
        assert_eq!(b.on_command(&pat(), b"DESTROY thesis.tex"), b"DESTROYED");
        assert_eq!(b.on_command(&pat(), b"COUNT"), b"0");
        assert_eq!(b.destroyed, vec![("pat".to_string(), "thesis.tex".to_string())]);
    }
}
