//! Deployment configuration: every protocol knob the paper discusses,
//! switchable so the attack/defense matrix (experiment E1) can run each
//! attack against each configuration.

use crate::encoding::Codec;
use crate::enclayer::EncLayer;
use krb_crypto::checksum::ChecksumType;

/// How the AS authenticates the *user* before releasing material
/// encrypted in the password key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PreauthMode {
    /// No preauthentication: anyone may harvest `{...}K_c` for any user
    /// (attack A5).
    None,
    /// `{timestamp}K_c` must accompany the request (recommendation g).
    EncTimestamp,
}

/// How application servers verify freshness of an AP request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthStyle {
    /// V4: timestamp in the authenticator, accepted within the skew
    /// window.
    Timestamp,
    /// Recommendation (a): the server challenges; the client proves key
    /// possession by a function of the challenge.
    ChallengeResponse,
}

/// Anti-replay discipline for KRB_SAFE / KRB_PRIV session messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Freshness {
    /// Draft 3: millisecond timestamps plus a cache of recent values.
    Timestamp,
    /// The appendix recommendation: per-session random initial sequence
    /// numbers.
    SequenceNumbers,
}

/// How application data flows after authentication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppProtection {
    /// Commands travel in the clear, trusted by source endpoint — the
    /// common 1990 deployment style (rlogin et al.). Hijacking (A14) is
    /// trivial.
    Plain,
    /// Commands travel in KRB_PRIV messages.
    Priv,
}

/// A complete protocol deployment configuration.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Display name for tables.
    pub name: &'static str,
    /// Wire/message encoding.
    pub codec: Codec,
    /// Encryption layer for tickets, authenticators, and KDC reply
    /// parts.
    pub ticket_layer: EncLayer,
    /// Encryption layer for KRB_PRIV session data.
    pub priv_layer: EncLayer,
    /// Checksum type for request binding and KRB_SAFE.
    pub checksum: ChecksumType,
    /// AS-exchange user preauthentication.
    pub preauth: PreauthMode,
    /// Layer exponential key exchange under the login dialog
    /// (recommendation h).
    pub dh_login: bool,
    /// Handheld-authenticator login: seal the AS reply under `{R}K_c`
    /// (recommendation c/a of the appendix list).
    pub hha_login: bool,
    /// Whether application servers maintain an authenticator replay
    /// cache ("the original design of Kerberos required such caching,
    /// though this was never implemented").
    pub replay_cache: bool,
    /// Application-server freshness mechanism.
    pub auth_style: AuthStyle,
    /// Negotiate a true session key distinct from the ticket's
    /// multi-session key (recommendation e).
    pub subkey_negotiation: bool,
    /// KRB_SAFE/PRIV anti-replay discipline.
    pub freshness: Freshness,
    /// Record and check the client address in tickets ("Is it useful to
    /// include the network address in a ticket? We think not.").
    pub address_in_ticket: bool,
    /// Whether the KDC honors ENC-TKT-IN-SKEY.
    pub allow_enc_tkt_in_skey: bool,
    /// Whether the KDC honors REUSE-SKEY.
    pub allow_reuse_skey: bool,
    /// The requirement "inadvertently omitted from Draft 3": with
    /// ENC-TKT-IN-SKEY, the cname in the additional ticket must match
    /// the requested server's name.
    pub enforce_cname_match: bool,
    /// Whether servers obey Draft 3's warning never to accept
    /// DUPLICATE-SKEY tickets for authentication.
    pub forbid_duplicate_skey_auth: bool,
    /// Bind authenticators to the intended service name (fix for the
    /// REUSE-SKEY redirect).
    pub service_binding: bool,
    /// Include a collision-proof checksum of the sealed ticket in KDC
    /// replies (recommendation c of the new list).
    pub ticket_cksum_in_rep: bool,
    /// Maximum ticket lifetime, µs.
    pub ticket_lifetime_us: u64,
    /// Permitted clock skew, µs ("typically five minutes").
    pub clock_skew_us: u64,
    /// AS requests allowed per source address per skew window, if rate
    /// limiting is on ("an enhancement to the server, to limit the rate
    /// of requests from a single source").
    pub kdc_rate_limit: Option<u32>,
    /// Post-authentication application data protection.
    pub app_protection: AppProtection,
}

impl ProtocolConfig {
    /// Kerberos V4 as fielded.
    pub fn v4() -> Self {
        ProtocolConfig {
            name: "v4",
            codec: Codec::Legacy,
            ticket_layer: EncLayer::V4Pcbc,
            priv_layer: EncLayer::V4Pcbc,
            checksum: ChecksumType::Crc32,
            preauth: PreauthMode::None,
            dh_login: false,
            hha_login: false,
            replay_cache: false,
            auth_style: AuthStyle::Timestamp,
            subkey_negotiation: false,
            freshness: Freshness::Timestamp,
            address_in_ticket: true,
            allow_enc_tkt_in_skey: false,
            allow_reuse_skey: false,
            enforce_cname_match: false,
            forbid_duplicate_skey_auth: false,
            service_binding: false,
            ticket_cksum_in_rep: false,
            ticket_lifetime_us: 8 * 3600 * 1_000_000,
            clock_skew_us: 5 * 60 * 1_000_000,
            kdc_rate_limit: None,
            app_protection: AppProtection::Plain,
        }
    }

    /// V5 Draft 3, read literally (CRC-32 permitted, options enabled,
    /// cname check omitted).
    pub fn v5_draft3() -> Self {
        ProtocolConfig {
            name: "v5-draft3",
            codec: Codec::Typed,
            ticket_layer: EncLayer::V5Cbc { confounder: true },
            priv_layer: EncLayer::V5Cbc { confounder: true },
            checksum: ChecksumType::Crc32,
            preauth: PreauthMode::None,
            dh_login: false,
            hha_login: false,
            replay_cache: false,
            auth_style: AuthStyle::Timestamp,
            subkey_negotiation: false,
            freshness: Freshness::Timestamp,
            address_in_ticket: true,
            allow_enc_tkt_in_skey: true,
            allow_reuse_skey: true,
            enforce_cname_match: false,
            forbid_duplicate_skey_auth: false,
            service_binding: false,
            ticket_cksum_in_rep: false,
            ticket_lifetime_us: 8 * 3600 * 1_000_000,
            clock_skew_us: 5 * 60 * 1_000_000,
            kdc_rate_limit: None,
            app_protection: AppProtection::Priv,
        }
    }

    /// Every recommendation in the paper applied.
    pub fn hardened() -> Self {
        ProtocolConfig {
            name: "hardened",
            codec: Codec::Typed,
            ticket_layer: EncLayer::HardenedCbc,
            priv_layer: EncLayer::HardenedCbc,
            checksum: ChecksumType::Md4Des,
            preauth: PreauthMode::EncTimestamp,
            dh_login: true,
            hha_login: true,
            replay_cache: true,
            auth_style: AuthStyle::ChallengeResponse,
            subkey_negotiation: true,
            freshness: Freshness::SequenceNumbers,
            address_in_ticket: false,
            allow_enc_tkt_in_skey: false,
            allow_reuse_skey: false,
            enforce_cname_match: true,
            forbid_duplicate_skey_auth: true,
            service_binding: true,
            ticket_cksum_in_rep: true,
            ticket_lifetime_us: 8 * 3600 * 1_000_000,
            clock_skew_us: 5 * 60 * 1_000_000,
            kdc_rate_limit: Some(32),
            app_protection: AppProtection::Priv,
        }
    }

    /// All three presets, for matrix runs.
    pub fn presets() -> Vec<ProtocolConfig> {
        vec![Self::v4(), Self::v5_draft3(), Self::hardened()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_consistent() {
        let v4 = ProtocolConfig::v4();
        let d3 = ProtocolConfig::v5_draft3();
        let hard = ProtocolConfig::hardened();

        assert_eq!(v4.codec, Codec::Legacy);
        assert_eq!(d3.codec, Codec::Typed);
        assert!(!v4.ticket_layer.provides_integrity());
        assert!(hard.ticket_layer.provides_integrity());
        assert!(!v4.checksum.is_collision_proof());
        assert!(hard.checksum.protects_public_data());
        assert!(d3.allow_enc_tkt_in_skey && !hard.allow_enc_tkt_in_skey);
        assert_eq!(ProtocolConfig::presets().len(), 3);
    }

    #[test]
    fn skew_is_five_minutes() {
        assert_eq!(ProtocolConfig::v4().clock_skew_us, 300_000_000);
    }
}
