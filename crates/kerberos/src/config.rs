//! Deployment configuration: every protocol knob the paper discusses,
//! switchable so the attack/defense matrix (experiment E1) can run each
//! attack against each configuration.

use crate::encoding::Codec;
use crate::enclayer::EncLayer;
use krb_crypto::checksum::ChecksumType;

/// How the AS authenticates the *user* before releasing material
/// encrypted in the password key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PreauthMode {
    /// No preauthentication: anyone may harvest `{...}K_c` for any user
    /// (attack A5).
    None,
    /// `{timestamp}K_c` must accompany the request (recommendation g).
    EncTimestamp,
}

/// How application servers verify freshness of an AP request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthStyle {
    /// V4: timestamp in the authenticator, accepted within the skew
    /// window.
    Timestamp,
    /// Recommendation (a): the server challenges; the client proves key
    /// possession by a function of the challenge.
    ChallengeResponse,
}

/// Anti-replay discipline for KRB_SAFE / KRB_PRIV session messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Freshness {
    /// Draft 3: millisecond timestamps plus a cache of recent values.
    Timestamp,
    /// The appendix recommendation: per-session random initial sequence
    /// numbers.
    SequenceNumbers,
}

/// How application data flows after authentication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppProtection {
    /// Commands travel in the clear, trusted by source endpoint — the
    /// common 1990 deployment style (rlogin et al.). Hijacking (A14) is
    /// trivial.
    Plain,
    /// Commands travel in KRB_PRIV messages.
    Priv,
}

/// Client-side timeout/retry discipline for KDC and AP exchanges.
///
/// Defaults are sized for the simulated campus network: enough attempts
/// to ride out ≥10% loss on every leg, exponential backoff so a crashed
/// server is not hammered, and *deterministic* jitter (derived from the
/// exchange nonce, not a clock) so runs replay exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per logical exchange (first try included).
    pub attempts: u32,
    /// Patience per attempt before declaring a timeout, µs.
    pub timeout_us: u64,
    /// Backoff before the second attempt, µs; doubles each retry.
    pub backoff_base_us: u64,
    /// Ceiling on any single backoff, µs.
    pub backoff_cap_us: u64,
}

impl RetryPolicy {
    /// The standard policy used by every preset.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 6,
            timeout_us: 1_000_000,
            backoff_base_us: 200_000,
            backoff_cap_us: 5_000_000,
        }
    }

    /// Backoff delay before retry number `attempt` (1-based: the wait
    /// after the `attempt`-th failure), with deterministic jitter mixed
    /// in from `jitter_seed` so concurrent clients don't retry in
    /// lockstep yet every run replays byte-for-byte.
    pub fn delay_us(&self, attempt: u32, jitter_seed: u64) -> u64 {
        let exp = self
            .backoff_base_us
            .checked_shl(attempt.saturating_sub(1).min(20))
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap_us);
        // SplitMix-style hash of (seed, attempt) for the jitter.
        let mut z = jitter_seed ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        // Jitter in [0, exp/2): full backoff plus up to 50% extra.
        exp + if exp > 1 { z % (exp / 2).max(1) } else { 0 }
    }
}

/// A complete protocol deployment configuration.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Display name for tables.
    pub name: &'static str,
    /// Wire/message encoding.
    pub codec: Codec,
    /// Encryption layer for tickets, authenticators, and KDC reply
    /// parts.
    pub ticket_layer: EncLayer,
    /// Encryption layer for KRB_PRIV session data.
    pub priv_layer: EncLayer,
    /// Checksum type for request binding and KRB_SAFE.
    pub checksum: ChecksumType,
    /// AS-exchange user preauthentication.
    pub preauth: PreauthMode,
    /// Layer exponential key exchange under the login dialog
    /// (recommendation h).
    pub dh_login: bool,
    /// Handheld-authenticator login: seal the AS reply under `{R}K_c`
    /// (recommendation c/a of the appendix list).
    pub hha_login: bool,
    /// Whether application servers maintain an authenticator replay
    /// cache ("the original design of Kerberos required such caching,
    /// though this was never implemented").
    pub replay_cache: bool,
    /// Application-server freshness mechanism.
    pub auth_style: AuthStyle,
    /// Negotiate a true session key distinct from the ticket's
    /// multi-session key (recommendation e).
    pub subkey_negotiation: bool,
    /// KRB_SAFE/PRIV anti-replay discipline.
    pub freshness: Freshness,
    /// Record and check the client address in tickets ("Is it useful to
    /// include the network address in a ticket? We think not.").
    pub address_in_ticket: bool,
    /// Whether the KDC honors ENC-TKT-IN-SKEY.
    pub allow_enc_tkt_in_skey: bool,
    /// Whether the KDC honors REUSE-SKEY.
    pub allow_reuse_skey: bool,
    /// The requirement "inadvertently omitted from Draft 3": with
    /// ENC-TKT-IN-SKEY, the cname in the additional ticket must match
    /// the requested server's name.
    pub enforce_cname_match: bool,
    /// Whether servers obey Draft 3's warning never to accept
    /// DUPLICATE-SKEY tickets for authentication.
    pub forbid_duplicate_skey_auth: bool,
    /// Bind authenticators to the intended service name (fix for the
    /// REUSE-SKEY redirect).
    pub service_binding: bool,
    /// Include a collision-proof checksum of the sealed ticket in KDC
    /// replies (recommendation c of the new list).
    pub ticket_cksum_in_rep: bool,
    /// Maximum ticket lifetime, µs.
    pub ticket_lifetime_us: u64,
    /// Permitted clock skew, µs ("typically five minutes").
    pub clock_skew_us: u64,
    /// AS requests allowed per source address per skew window, if rate
    /// limiting is on ("an enhancement to the server, to limit the rate
    /// of requests from a single source").
    pub kdc_rate_limit: Option<u32>,
    /// Post-authentication application data protection.
    pub app_protection: AppProtection,
    /// Client timeout/retry/failover discipline.
    pub retry: RetryPolicy,
    /// Whether servers persist their replay caches across restarts
    /// (snapshot + fail-closed window). Off = the V4 reality: a volatile
    /// cache that forgets everything on reboot.
    pub persist_replay_cache: bool,
    /// How often a dirty replay cache is snapshotted to stable storage,
    /// µs.
    pub replay_snapshot_interval_us: u64,
}

impl ProtocolConfig {
    /// Kerberos V4 as fielded.
    pub fn v4() -> Self {
        ProtocolConfig {
            name: "v4",
            codec: Codec::Legacy,
            ticket_layer: EncLayer::V4Pcbc,
            priv_layer: EncLayer::V4Pcbc,
            checksum: ChecksumType::Crc32,
            preauth: PreauthMode::None,
            dh_login: false,
            hha_login: false,
            replay_cache: false,
            auth_style: AuthStyle::Timestamp,
            subkey_negotiation: false,
            freshness: Freshness::Timestamp,
            address_in_ticket: true,
            allow_enc_tkt_in_skey: false,
            allow_reuse_skey: false,
            enforce_cname_match: false,
            forbid_duplicate_skey_auth: false,
            service_binding: false,
            ticket_cksum_in_rep: false,
            ticket_lifetime_us: 8 * 3600 * 1_000_000,
            clock_skew_us: 5 * 60 * 1_000_000,
            kdc_rate_limit: None,
            app_protection: AppProtection::Plain,
            retry: RetryPolicy::standard(),
            persist_replay_cache: false,
            replay_snapshot_interval_us: 60_000_000,
        }
    }

    /// V5 Draft 3, read literally (CRC-32 permitted, options enabled,
    /// cname check omitted).
    pub fn v5_draft3() -> Self {
        ProtocolConfig {
            name: "v5-draft3",
            codec: Codec::Typed,
            ticket_layer: EncLayer::V5Cbc { confounder: true },
            priv_layer: EncLayer::V5Cbc { confounder: true },
            checksum: ChecksumType::Crc32,
            preauth: PreauthMode::None,
            dh_login: false,
            hha_login: false,
            replay_cache: false,
            auth_style: AuthStyle::Timestamp,
            subkey_negotiation: false,
            freshness: Freshness::Timestamp,
            address_in_ticket: true,
            allow_enc_tkt_in_skey: true,
            allow_reuse_skey: true,
            enforce_cname_match: false,
            forbid_duplicate_skey_auth: false,
            service_binding: false,
            ticket_cksum_in_rep: false,
            ticket_lifetime_us: 8 * 3600 * 1_000_000,
            clock_skew_us: 5 * 60 * 1_000_000,
            kdc_rate_limit: None,
            app_protection: AppProtection::Priv,
            retry: RetryPolicy::standard(),
            persist_replay_cache: false,
            replay_snapshot_interval_us: 60_000_000,
        }
    }

    /// Every recommendation in the paper applied.
    pub fn hardened() -> Self {
        ProtocolConfig {
            name: "hardened",
            codec: Codec::Typed,
            ticket_layer: EncLayer::HardenedCbc,
            priv_layer: EncLayer::HardenedCbc,
            checksum: ChecksumType::Md4Des,
            preauth: PreauthMode::EncTimestamp,
            dh_login: true,
            hha_login: true,
            replay_cache: true,
            auth_style: AuthStyle::ChallengeResponse,
            subkey_negotiation: true,
            freshness: Freshness::SequenceNumbers,
            address_in_ticket: false,
            allow_enc_tkt_in_skey: false,
            allow_reuse_skey: false,
            enforce_cname_match: true,
            forbid_duplicate_skey_auth: true,
            service_binding: true,
            ticket_cksum_in_rep: true,
            ticket_lifetime_us: 8 * 3600 * 1_000_000,
            clock_skew_us: 5 * 60 * 1_000_000,
            kdc_rate_limit: Some(32),
            app_protection: AppProtection::Priv,
            retry: RetryPolicy::standard(),
            persist_replay_cache: true,
            replay_snapshot_interval_us: 60_000_000,
        }
    }

    /// All three presets, for matrix runs.
    pub fn presets() -> Vec<ProtocolConfig> {
        vec![Self::v4(), Self::v5_draft3(), Self::hardened()]
    }

    /// This configuration with the codec switched to [`Codec::Wire`]
    /// (and renamed accordingly). Not a preset — E1's matrix stays three
    /// configurations — but how the wire-format tests and the fuzzing
    /// corpus run the same deployments over the tagged wire.
    pub fn with_wire_codec(mut self) -> Self {
        self.codec = Codec::Wire;
        self.name = match self.name {
            "v4" => "v4+wire",
            "v5-draft3" => "v5-draft3+wire",
            "hardened" => "hardened+wire",
            other => other,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_consistent() {
        let v4 = ProtocolConfig::v4();
        let d3 = ProtocolConfig::v5_draft3();
        let hard = ProtocolConfig::hardened();

        assert_eq!(v4.codec, Codec::Legacy);
        assert_eq!(d3.codec, Codec::Typed);
        assert!(!v4.ticket_layer.provides_integrity());
        assert!(hard.ticket_layer.provides_integrity());
        assert!(!v4.checksum.is_collision_proof());
        assert!(hard.checksum.protects_public_data());
        assert!(d3.allow_enc_tkt_in_skey && !hard.allow_enc_tkt_in_skey);
        assert_eq!(ProtocolConfig::presets().len(), 3);
    }

    #[test]
    fn wire_variant_changes_only_codec_and_name() {
        let w = ProtocolConfig::hardened().with_wire_codec();
        assert_eq!(w.codec, Codec::Wire);
        assert_eq!(w.name, "hardened+wire");
        assert_eq!(w.checksum, ProtocolConfig::hardened().checksum);
        assert_eq!(ProtocolConfig::v4().with_wire_codec().name, "v4+wire");
    }

    #[test]
    fn skew_is_five_minutes() {
        assert_eq!(ProtocolConfig::v4().clock_skew_us, 300_000_000);
    }

    #[test]
    fn retry_backoff_grows_deterministically_and_caps() {
        let p = RetryPolicy::standard();
        assert!(p.delay_us(2, 42) > p.delay_us(1, 42) / 2, "roughly doubling");
        // Cap plus at most 50% jitter, even at absurd attempt counts.
        assert!(p.delay_us(40, 42) <= p.backoff_cap_us + p.backoff_cap_us / 2);
        assert_eq!(p.delay_us(3, 7), p.delay_us(3, 7), "jitter is deterministic");
        assert_ne!(p.delay_us(3, 7), p.delay_us(3, 8), "jitter varies by seed");
    }
}
