//! The Key Distribution Center: AS and TGS exchanges.
//!
//! One [`Kdc`] serves one realm, bound to port [`KDC_PORT`] of its host.
//! Every protocol decision the paper critiques is driven by the
//! [`ProtocolConfig`]: preauthentication, the DH login layer,
//! handheld-authenticator login, checksum type, the ENC-TKT-IN-SKEY and
//! REUSE-SKEY options (with or without the cname check Draft 3 omitted),
//! rate limiting, and address binding.

use crate::authenticator::Authenticator;
use crate::config::{PreauthMode, ProtocolConfig};
use crate::database::KdcDatabase;
use crate::encoding::MsgType;
use crate::error::KrbError;
use crate::flags::{KdcOptions, TicketFlags};
use crate::messages::{
    err_code, AsRep, AsReq, EncKdcRepPart, KrbErrorMsg, PaData, TgsRep, TgsReq, WireKind,
};
use crate::principal::Principal;
use crate::replay_cache::{CacheVerdict, ReplayCache};
use crate::ticket::Ticket;
use krb_crypto::checksum;
use krb_crypto::des::{DesKey, ScheduledKey};
use krb_crypto::dh::DhGroup;
use krb_crypto::rng::{Drbg, RandomSource};
use krb_trace::{EventKind, Tracer, Value};
use simnet::{Endpoint, Service, ServiceCtx};
use std::collections::BTreeMap;

/// The conventional KDC port.
pub const KDC_PORT: u16 = 88;

/// Bound on the per-client bookkeeping maps (`req_counts`,
/// `pending_hha`): a million-principal soak must not grow KDC memory
/// linearly with the number of distinct sources ever seen.
pub const RATE_MAP_BOUND: usize = 1024;

/// Makes room in a bounded per-client map before inserting a new key:
/// first drops every entry whose window expired (its timestamp is more
/// than `window_us` old), then — if the map is still full — the entries
/// with the oldest timestamps, smallest map key first. Both passes are
/// pure functions of the map contents and `now_us`, so eviction is
/// deterministic across runs. Returns how many entries were evicted.
fn evict_for_insert<K: Ord + Clone, V>(
    map: &mut BTreeMap<K, V>,
    bound: usize,
    now_us: u64,
    window_us: u64,
    stamp: impl Fn(&V) -> u64,
) -> u64 {
    if map.len() < bound {
        return 0;
    }
    let mut evicted = 0u64;
    let expired: Vec<K> = map
        .iter()
        .filter(|(_, v)| now_us.saturating_sub(stamp(v)) > window_us)
        .map(|(k, _)| k.clone())
        .collect();
    for k in &expired {
        map.remove(k);
        evicted += 1;
    }
    while map.len() >= bound {
        // BTreeMap iteration is key-ordered, so min_by_key's first-wins
        // tie break picks the same victim on every run.
        let Some(victim) = map.iter().min_by_key(|(_, v)| stamp(v)).map(|(k, _)| k.clone()) else {
            break;
        };
        map.remove(&victim);
        evicted += 1;
    }
    evicted
}

/// Derives the handheld-authenticator response key `{R}K_c`.
pub fn hha_key(kc: &DesKey, r: u64) -> DesKey {
    DesKey::from_u64(kc.encrypt_block(r)).with_odd_parity()
}

/// An audit record of an issued ticket.
#[derive(Clone, Debug)]
pub struct IssueRecord {
    /// The client the ticket names.
    pub client: Principal,
    /// The service it is good for.
    pub service: Principal,
    /// KDC local time at issue, µs.
    pub at_us: u64,
}

/// The KDC service.
pub struct Kdc {
    /// Deployment configuration.
    pub config: ProtocolConfig,
    /// The realm database.
    pub db: KdcDatabase,
    tgs_key: ScheduledKey,
    rng: Drbg,
    dh_group: DhGroup,
    /// Per-source AS-request counters for rate limiting: addr ->
    /// (window start µs, count). Bounded at [`RATE_MAP_BOUND`] entries
    /// with deterministic eviction of expired windows.
    req_counts: BTreeMap<u32, (u64, u32)>,
    /// Replay cache for preauthentication blobs.
    preauth_cache: ReplayCache,
    /// Outstanding handheld-authenticator challenges:
    /// (client, source addr) -> (R, issued at µs). Bounded like
    /// `req_counts`, evicting the stalest challenges first.
    pending_hha: BTreeMap<(Principal, u32), (u64, u64)>,
    /// Reusable plaintext scratch for preauth-blob opens: the batch
    /// path opens thousands of blobs without allocating per request.
    scratch: Vec<u8>,
    /// Audit log of issued tickets.
    pub issued: Vec<IssueRecord>,
    /// Simulated stable storage: the last replay-cache snapshot. This
    /// field survives a crash window (unlike every volatile structure
    /// cleared by `on_restart`) precisely because it models the disk.
    disk: Option<Vec<u8>>,
    last_snapshot_us: u64,
    /// Restarts observed (crash windows ridden out).
    pub restarts: u32,
    /// The network's tracer, refreshed from the service context on
    /// every dispatch so internal handlers can emit without threading
    /// the context through each of them.
    trace: Tracer,
    /// Network true time at dispatch, µs — the timestamp events carry
    /// (protocol checks keep using the host's *local* clock).
    trace_now_us: u64,
}

impl Kdc {
    /// Builds a KDC over `db`. A database without the realm's TGS
    /// principal gets one provisioned with a key derived from
    /// `rng_seed` — protocol code must not panic (krb-lint P001).
    pub fn new(config: ProtocolConfig, mut db: KdcDatabase, rng_seed: u64) -> Self {
        let tgs = Principal::tgs(db.realm());
        let tgs_raw = match db.lookup(&tgs) {
            Ok(e) => e.key,
            Err(_) => {
                let k = DesKey::from_u64(rng_seed ^ 0x6b72_6254_4753_6b79).with_odd_parity();
                db.add_tgs(k);
                k
            }
        };
        let tgs_key = ScheduledKey::new(tgs_raw);
        let skew = config.clock_skew_us;
        Kdc {
            config,
            db,
            tgs_key,
            rng: Drbg::new(rng_seed),
            dh_group: DhGroup::oakley768(),
            req_counts: BTreeMap::new(),
            preauth_cache: ReplayCache::new(skew),
            pending_hha: BTreeMap::new(),
            scratch: Vec::new(),
            issued: Vec::new(),
            disk: None,
            last_snapshot_us: 0,
            restarts: 0,
            trace: Tracer::new(),
            trace_now_us: 0,
        }
    }

    /// Snapshots the preauth replay cache to "disk" when the configured
    /// interval has elapsed.
    fn maybe_snapshot(&mut self, now_us: u64) {
        if self.config.persist_replay_cache
            && now_us.saturating_sub(self.last_snapshot_us) >= self.config.replay_snapshot_interval_us
        {
            self.disk = Some(self.preauth_cache.snapshot(now_us));
            self.last_snapshot_us = now_us;
        }
    }

    /// The realm this KDC serves.
    pub fn realm(&self) -> String {
        self.db.realm().to_string()
    }

    fn error(&self, code: u32, text: &str) -> Vec<u8> {
        KrbErrorMsg { code, text: text.into(), challenge: None }.encode(self.config.codec)
    }

    /// Applies the per-source AS rate limit, if configured.
    fn rate_limited(&mut self, src_addr: u32, now_us: u64) -> bool {
        let Some(limit) = self.config.kdc_rate_limit else { return false };
        let window = self.config.clock_skew_us.max(1);
        if !self.req_counts.contains_key(&src_addr) {
            let evicted =
                evict_for_insert(&mut self.req_counts, RATE_MAP_BOUND, now_us, window, |v| v.0);
            if evicted > 0 {
                self.trace.counter("kdc.rate_evictions", "req_counts", evicted);
            }
        }
        let entry = self.req_counts.entry(src_addr).or_insert((now_us, 0));
        if now_us.saturating_sub(entry.0) > window {
            *entry = (now_us, 0);
        }
        entry.1 += 1;
        entry.1 > limit
    }

    /// Extracts the encrypted-timestamp preauthentication blob.
    fn preauth_blob(req: &AsReq) -> Option<Vec<u8>> {
        req.padata.iter().find_map(|p| match p {
            PaData::EncTimestamp(b) => Some(b.clone()),
            _ => None,
        })
    }

    /// Verifies a `{timestamp}key` preauthentication blob. Checks the
    /// replay cache WITHOUT recording: the blob is committed only when
    /// the whole request succeeds, so a request that fails later cannot
    /// poison a legitimate retry. Takes the already-expanded key
    /// schedule and opens into the KDC's reusable scratch buffer, so a
    /// batch of requests pays no per-blob allocation.
    fn check_preauth_blob(
        &mut self,
        blob: &[u8],
        key: &ScheduledKey,
        now_us: u64,
    ) -> Result<(), KrbError> {
        let layer = self.config.ticket_layer;
        let mut scratch = std::mem::take(&mut self.scratch);
        let opened = layer.open_into(key, 0, blob, &mut scratch);
        let ts = if opened.is_ok() && scratch.len() >= 8 {
            Some(u64::from_be_bytes(crate::encoding::be_array::<8>(&scratch[..8])))
        } else {
            None
        };
        self.scratch = scratch;
        let Some(ts) = ts else { return Err(KrbError::PreauthFailed) };
        if ts.abs_diff(now_us) > self.config.clock_skew_us {
            return Err(KrbError::PreauthFailed);
        }
        match self.preauth_cache.check(blob, ts, now_us) {
            CacheVerdict::Replayed => Err(KrbError::Replay),
            CacheVerdict::FailClosed => Err(KrbError::FailClosed),
            CacheVerdict::Fresh => Ok(()),
        }
    }

    /// Handles KRB_AS_REQ.
    fn as_exchange(&mut self, body: &[u8], from: Endpoint, now_us: u64) -> Vec<u8> {
        let req = match AsReq::decode(self.config.codec, body) {
            Ok(r) => r,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };
        if self.rate_limited(from.addr.0, now_us) {
            self.trace.emit(
                EventKind::RateLimited,
                self.trace_now_us,
                vec![
                    ("client", Value::str(&req.client.name)),
                    ("src", Value::str(from.addr.to_string())),
                ],
            );
            self.trace.counter("kdc.rate_limited", &req.client.name, 1);
            return self.error(err_code::RATE_LIMITED, "request rate exceeded");
        }
        let client_entry = match self.db.lookup(&req.client) {
            Ok(e) => e.clone(),
            Err(_) => return self.error(err_code::UNKNOWN_PRINCIPAL, "no such client"),
        };
        if !self.db.contains(&req.service) {
            return self.error(err_code::UNKNOWN_PRINCIPAL, "no such service");
        }

        // A preauth blob that passes `check` is remembered here and
        // committed to the replay cache only once the whole exchange
        // succeeds.
        let mut commit_blob: Option<Vec<u8>> = None;

        // Handheld-authenticator login is a two-round exchange: the KDC
        // issues a challenge R, and the client proves possession of
        // {R}K_c by sealing a preauthentication timestamp with it. The
        // sealed timestamp doubles as preauthentication, so ticket
        // harvesting (A5) fails here too.
        //
        // Whichever path runs, the key that will seal the reply part is
        // schedule-expanded exactly once here and reused for the
        // preauth open — the batch path's per-request amortization.
        let (challenge_r, reply_sched): (Option<u64>, ScheduledKey) = if self.config.hha_login {
            match Self::preauth_blob(&req) {
                None => {
                    // Challenge issuance is idempotent per (client,
                    // addr): a retransmitted or duplicated probe gets
                    // the SAME outstanding R, so a late duplicate on a
                    // lossy wire cannot invalidate the challenge the
                    // client is busy answering.
                    let key = (req.client.clone(), from.addr.0);
                    let r = match self.pending_hha.get(&key) {
                        Some((r, _)) => *r,
                        None => {
                            let evicted = evict_for_insert(
                                &mut self.pending_hha,
                                RATE_MAP_BOUND,
                                now_us,
                                self.config.clock_skew_us.max(1),
                                |v| v.1,
                            );
                            if evicted > 0 {
                                self.trace.counter("kdc.rate_evictions", "pending_hha", evicted);
                            }
                            let r = self.rng.next_u64();
                            self.pending_hha.insert(key, (r, now_us));
                            r
                        }
                    };
                    self.trace.emit(
                        EventKind::ChallengeIssued,
                        self.trace_now_us,
                        vec![("client", Value::str(&req.client.name))],
                    );
                    self.trace.counter("kdc.challenges", &req.client.name, 1);
                    return KrbErrorMsg {
                        code: err_code::PREAUTH_REQUIRED,
                        text: "respond to login challenge".into(),
                        challenge: Some(r),
                    }
                    .encode(self.config.codec);
                }
                Some(blob) => {
                    let key = (req.client.clone(), from.addr.0);
                    let Some((r, _)) = self.pending_hha.get(&key).copied() else {
                        return self.error(err_code::PREAUTH_FAILED, "no challenge outstanding");
                    };
                    let kprime = ScheduledKey::new(hha_key(&client_entry.key, r));
                    if let Err(e) = self.check_preauth_blob(&blob, &kprime, now_us) {
                        // The challenge stays outstanding: a stale
                        // duplicate of an EARLIER response must not
                        // consume the R the honest client is about to
                        // answer. Guessing against a standing R is
                        // rate-limited like everything else.
                        return self.preauth_error(&req.client, e);
                    }
                    self.pending_hha.remove(&key);
                    commit_blob = Some(blob);
                    (Some(r), kprime)
                }
            }
        } else {
            let client_sched = ScheduledKey::new(client_entry.key);
            // Plain preauthentication (recommendation g).
            if self.config.preauth == PreauthMode::EncTimestamp {
                let Some(blob) = Self::preauth_blob(&req) else {
                    return self.error(err_code::PREAUTH_REQUIRED, "preauthentication required");
                };
                if let Err(e) = self.check_preauth_blob(&blob, &client_sched, now_us) {
                    return self.preauth_error(&req.client, e);
                }
                commit_blob = Some(blob);
            }
            (None, client_sched)
        };

        // Issue the ticket-granting ticket, honoring requested
        // attribute options.
        let mut flags = TicketFlags::empty().with(TicketFlags::INITIAL);
        if req.options.has(KdcOptions::FORWARDABLE) {
            flags = flags.with(TicketFlags::FORWARDABLE);
        }
        if req.options.has(KdcOptions::RENEWABLE) {
            flags = flags.with(TicketFlags::RENEWABLE);
        }
        let session_key = self.rng.gen_des_key();
        let lifetime = req.lifetime_us.min(self.config.ticket_lifetime_us);
        let ticket = Ticket {
            flags,
            client: req.client.clone(),
            service: req.service.clone(),
            addr: self.config.address_in_ticket.then_some(req.addr),
            auth_time: now_us,
            start_time: now_us,
            end_time: now_us + lifetime,
            session_key,
            transited: vec![],
        };
        let sealed_ticket = match ticket.seal_with(self.config.codec, self.config.ticket_layer, &self.tgs_key, &mut self.rng)
        {
            Ok(t) => t,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };

        let ticket_cksum = self
            .config
            .ticket_cksum_in_rep
            .then(|| {
                let key = self.config.checksum.is_keyed().then_some(&session_key);
                // Key presence matches is_keyed, so compute cannot fail; on
                // the unreachable error the reply omits the checksum rather
                // than panicking the KDC.
                checksum::compute(self.config.checksum, key, &sealed_ticket).ok()
            })
            .flatten();
        let part = EncKdcRepPart {
            session_key,
            nonce: req.nonce,
            ticket: sealed_ticket,
            end_time: ticket.end_time,
            server_time: now_us,
            ticket_cksum,
        };
        let part_bytes = part.encode(self.config.codec, MsgType::EncAsRepPart);

        // Seal under the schedule expanded above: K_c, or {R}K_c for
        // handheld authenticators.
        let inner = match self.config.ticket_layer.seal_with(&reply_sched, 0, &part_bytes, &mut self.rng) {
            Ok(v) => v,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };

        // Optional exponential-key-exchange outer layer (recommendation
        // h): a passive wiretapper no longer records anything decryptable
        // by a password guess.
        let (dh_public, enc_part) = if self.config.dh_login {
            let client_pub = req.padata.iter().find_map(|p| match p {
                PaData::DhPublic(b) => Some(b.clone()),
                _ => None,
            });
            let Some(client_pub) = client_pub else {
                return self.error(err_code::PREAUTH_REQUIRED, "DH public value required");
            };
            let kp = match self.dh_group.keypair(160, &mut self.rng) {
                Ok(kp) => kp,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };
            let their = krb_crypto::bignum::BigUint::from_bytes_be(&client_pub);
            let secret = match self.dh_group.shared_secret(&their, &kp.private) {
                Ok(s) => s,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };
            let dh_key = DhGroup::derive_key(&secret);
            let outer = match self.config.ticket_layer.seal(&dh_key, 0, &inner, &mut self.rng) {
                Ok(v) => v,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };
            (Some(kp.public.to_bytes_be()), outer)
        } else {
            (None, inner)
        };

        // Every check passed: only now does the preauth blob enter the
        // replay cache (and, on its schedule, the on-disk snapshot).
        if let Some(blob) = &commit_blob {
            self.preauth_cache.commit(blob, now_us);
            self.maybe_snapshot(now_us);
        }
        self.trace_issue("as", &req.client, &req.service, &session_key, ticket.end_time);
        self.issued.push(IssueRecord { client: req.client, service: req.service, at_us: now_us });
        AsRep { challenge_r, dh_public, enc_part }.encode(self.config.codec)
    }

    /// Records a ticket issuance in the trace: which exchange, for whom,
    /// for what service, expiring when — and the session key only as a
    /// redacted fingerprint (S004).
    fn trace_issue(
        &self,
        exchange: &'static str,
        client: &Principal,
        service: &Principal,
        session_key: &DesKey,
        end_time: u64,
    ) {
        self.trace.emit(
            EventKind::TicketIssued,
            self.trace_now_us,
            vec![
                ("exchange", Value::str(exchange)),
                ("client", Value::str(client.to_string())),
                ("service", Value::str(service.to_string())),
                ("key_fpr", Value::str(crate::traceview::fingerprint(session_key))),
                ("end_time_us", Value::U64(end_time)),
            ],
        );
        self.trace.counter("kdc.issued", &client.name, 1);
    }

    /// Renders a preauthentication failure as the right KRB_ERROR and
    /// records the verdict in the trace (replay hits, fail-closed
    /// windows, and plain failures are distinct events).
    fn preauth_error(&self, client: &Principal, e: KrbError) -> Vec<u8> {
        let (code, kind) = match e {
            KrbError::Replay => (err_code::REPLAY, EventKind::ReplayBlocked),
            KrbError::FailClosed => (err_code::TRY_LATER, EventKind::FailClosed),
            _ => (err_code::PREAUTH_FAILED, EventKind::PreauthFailed),
        };
        self.trace.emit(
            kind,
            self.trace_now_us,
            vec![
                ("site", Value::str("kdc.preauth")),
                ("client", Value::str(&client.name)),
                ("error", Value::str(e.to_string())),
            ],
        );
        self.trace.counter("kdc.preauth_rejects", &client.name, 1);
        self.error(code, &e.to_string())
    }

    /// Attempts to unseal a presented TGT under the realm TGS key or any
    /// cross-realm key.
    fn unseal_tgt(&self, sealed: &[u8]) -> Result<Ticket, KrbError> {
        if let Ok(t) = Ticket::unseal_with(self.config.codec, self.config.ticket_layer, &self.tgs_key, sealed)
        {
            return Ok(t);
        }
        // Cross-realm: a remote TGS sealed this with a shared inter-realm
        // key, stored locally as krbtgt.<remote>@<this-realm>. Try every
        // inter-realm entry.
        for p in self.db.principals().filter(|p| p.is_tgs()).cloned().collect::<Vec<_>>() {
            let Ok(entry) = self.db.lookup(&p) else { continue };
            let key = entry.key;
            if let Ok(t) = Ticket::unseal(self.config.codec, self.config.ticket_layer, &key, sealed) {
                return Ok(t);
            }
        }
        Err(KrbError::Decode("TGT unseal failed"))
    }

    /// Attempts to unseal any ticket the KDC could know the key for:
    /// TGTs, cross-realm tickets, or service tickets (the KDC holds all
    /// service keys). Needed by REUSE-SKEY, whose additional ticket is a
    /// service ticket.
    fn unseal_any(&self, sealed: &[u8]) -> Result<Ticket, KrbError> {
        if let Ok(t) = self.unseal_tgt(sealed) {
            return Ok(t);
        }
        for p in self.db.principals().cloned().collect::<Vec<_>>() {
            let Ok(entry) = self.db.lookup(&p) else { continue };
            let key = entry.key;
            if let Ok(t) = Ticket::unseal(self.config.codec, self.config.ticket_layer, &key, sealed) {
                return Ok(t);
            }
        }
        Err(KrbError::Decode("additional ticket unseal failed"))
    }

    /// Handles KRB_TGS_REQ.
    fn tgs_exchange(&mut self, body: &[u8], from: Endpoint, now_us: u64) -> Vec<u8> {
        let req = match TgsReq::decode(self.config.codec, body) {
            Ok(r) => r,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };

        let tgt = match self.unseal_tgt(&req.tgt) {
            Ok(t) => t,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };
        if !tgt.valid_at(now_us, self.config.clock_skew_us) {
            return self.error(err_code::GENERIC, "TGT expired");
        }

        // The TGT session key seals the authenticator we are about to
        // open AND the reply part we will send: expand its schedule once
        // for the whole exchange.
        let tgt_sched = ScheduledKey::new(tgt.session_key);

        // Authenticator under the TGS session key.
        let auth = match Authenticator::unseal_with(
            self.config.codec,
            self.config.ticket_layer,
            &tgt_sched,
            &req.authenticator,
        ) {
            Ok(a) => a,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };
        if auth.client != tgt.client {
            return self.error(err_code::GENERIC, "authenticator/ticket client mismatch");
        }
        if auth.timestamp.abs_diff(now_us) > self.config.clock_skew_us {
            return self.error(err_code::SKEW, "authenticator too old");
        }
        if let Some(taddr) = tgt.addr {
            if self.config.address_in_ticket && taddr != from.addr.0 {
                return self.error(err_code::GENERIC, "address mismatch");
            }
        }

        // The checksum sealed in the authenticator must cover the
        // cleartext request fields. With CRC-32 this check is the one
        // attack A9 defeats by collision.
        match &auth.cksum {
            None => return self.error(err_code::INTEGRITY, "missing request checksum"),
            Some(c) => {
                if c.ctype != self.config.checksum {
                    return self.error(err_code::INTEGRITY, "wrong checksum type");
                }
                let key = c.ctype.is_keyed().then_some(&tgt.session_key);
                if checksum::verify(c, key, &req.checksum_body()).is_err() {
                    return self.error(err_code::INTEGRITY, "request checksum mismatch");
                }
            }
        }

        // Ticket renewal: reissue the presented (renewable) TGT with a
        // fresh validity window and the same session key. "The latter is
        // a security measure; the longer a ticket is in use, the greater
        // the risk" — renewal trades a KDC round trip for bounded
        // exposure.
        if req.options.has(KdcOptions::RENEW) {
            if !tgt.flags.has(TicketFlags::RENEWABLE) {
                return self.error(err_code::POLICY, "ticket is not renewable");
            }
            if req.service != tgt.service {
                return self.error(err_code::POLICY, "renewal must name the original service");
            }
            let lifetime = req.lifetime_us.min(self.config.ticket_lifetime_us);
            let renewed = Ticket { start_time: now_us, end_time: now_us + lifetime, ..tgt.clone() };
            let sealed_ticket = match renewed.seal_with(
                self.config.codec,
                self.config.ticket_layer,
                &self.tgs_key,
                &mut self.rng,
            ) {
                    Ok(t) => t,
                    Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
                };
            let ticket_cksum = self
                .config
                .ticket_cksum_in_rep
                .then(|| {
                    let key = self.config.checksum.is_keyed().then_some(&tgt.session_key);
                    // Key presence matches is_keyed, so compute cannot fail; on
                    // the unreachable error the reply omits the checksum rather
                    // than panicking the KDC.
                    checksum::compute(self.config.checksum, key, &sealed_ticket).ok()
                })
                .flatten();
            let part = EncKdcRepPart {
                session_key: renewed.session_key,
                nonce: req.nonce,
                ticket: sealed_ticket,
                end_time: renewed.end_time,
                server_time: now_us,
                ticket_cksum,
            };
            let enc_part = match self.config.ticket_layer.seal_with(
                &tgt_sched,
                0,
                &part.encode(self.config.codec, MsgType::EncTgsRepPart),
                &mut self.rng,
            ) {
                Ok(v) => v,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };
            self.trace_issue("tgs.renew", &tgt.client, &req.service, &renewed.session_key, renewed.end_time);
            self.issued.push(IssueRecord { client: tgt.client, service: req.service, at_us: now_us });
            return TgsRep { enc_part }.encode(self.config.codec);
        }

        // Resolve the target service and its sealing key.
        let cross_realm_target = req.service.is_tgs() && req.service.instance != self.realm();
        let service_key = if cross_realm_target {
            let p = Principal::cross_realm_tgs(&req.service.instance, &self.realm());
            match self.db.lookup(&p) {
                Ok(e) => e.key,
                Err(_) => {
                    return self.error(
                        err_code::POLICY,
                        &format!("no inter-realm key for {}", req.service.instance),
                    )
                }
            }
        } else {
            match self.db.lookup(&req.service) {
                Ok(e) => e.key,
                Err(_) => return self.error(err_code::UNKNOWN_PRINCIPAL, "no such service"),
            }
        };

        // Option processing.
        let mut flags = TicketFlags::empty();
        let mut session_key = self.rng.gen_des_key();
        let mut sealing_key = service_key;

        if req.options.has(KdcOptions::ENC_TKT_IN_SKEY) {
            if !self.config.allow_enc_tkt_in_skey {
                return self.error(err_code::POLICY, "ENC-TKT-IN-SKEY not allowed");
            }
            let Some(add) = &req.additional_ticket else {
                return self.error(err_code::GENERIC, "ENC-TKT-IN-SKEY requires additional ticket");
            };
            let add_tkt = match self.unseal_tgt(add) {
                Ok(t) => t,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };
            // The check "apparently inadvertently omitted from Draft 3":
            // the cname in the additional ticket must match the server
            // name for which the new ticket is requested.
            if self.config.enforce_cname_match && add_tkt.client != req.service {
                return self.error(err_code::POLICY, "additional-ticket cname mismatch");
            }
            sealing_key = add_tkt.session_key;
        }

        if req.options.has(KdcOptions::REUSE_SKEY) {
            if !self.config.allow_reuse_skey {
                return self.error(err_code::POLICY, "REUSE-SKEY not allowed");
            }
            let Some(add) = &req.additional_ticket else {
                return self.error(err_code::GENERIC, "REUSE-SKEY requires additional ticket");
            };
            let add_tkt = match self.unseal_any(add) {
                Ok(t) => t,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };
            session_key = add_tkt.session_key;
            flags = flags.with(TicketFlags::DUPLICATE_SKEY);
        }

        // Ticket forwarding. Note, faithfully to the paper's complaint:
        // the FORWARDED flag is set "but does not include the original
        // source" — the receiving server cannot evaluate where the chain
        // began.
        let mut bound_addr = self.config.address_in_ticket.then_some(from.addr.0);
        if req.options.has(KdcOptions::FORWARDED) {
            if !tgt.flags.has(TicketFlags::FORWARDABLE) {
                return self.error(err_code::POLICY, "ticket is not forwardable");
            }
            flags = flags.with(TicketFlags::FORWARDED);
            if self.config.address_in_ticket {
                bound_addr = Some(req.forward_addr.unwrap_or(u64::from(from.addr.0)) as u32);
            }
        }
        if req.options.has(KdcOptions::FORWARDABLE) && tgt.flags.has(TicketFlags::FORWARDABLE) {
            flags = flags.with(TicketFlags::FORWARDABLE);
        }

        // Transited realms: extend the path when the client's TGT came
        // from elsewhere.
        let mut transited = tgt.transited.clone();
        if tgt.client.realm != self.realm() && !transited.contains(&tgt.client.realm) {
            // Record where the chain started if missing.
        }
        if cross_realm_target {
            transited.push(self.realm());
        }

        let lifetime = req.lifetime_us.min(self.config.ticket_lifetime_us);
        let end_time = (now_us + lifetime).min(tgt.end_time);
        let ticket = Ticket {
            flags,
            client: tgt.client.clone(),
            service: req.service.clone(),
            addr: bound_addr,
            auth_time: tgt.auth_time,
            start_time: now_us,
            end_time,
            session_key,
            transited,
        };
        let sealed_ticket =
            match ticket.seal(self.config.codec, self.config.ticket_layer, &sealing_key, &mut self.rng) {
                Ok(t) => t,
                Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
            };

        let ticket_cksum = self
            .config
            .ticket_cksum_in_rep
            .then(|| {
                let key = self.config.checksum.is_keyed().then_some(&tgt.session_key);
                // Key presence matches is_keyed, so compute cannot fail; on
                // the unreachable error the reply omits the checksum rather
                // than panicking the KDC.
                checksum::compute(self.config.checksum, key, &sealed_ticket).ok()
            })
            .flatten();
        let part = EncKdcRepPart {
            session_key,
            nonce: req.nonce,
            ticket: sealed_ticket,
            end_time,
            server_time: now_us,
            ticket_cksum,
        };
        let enc_part = match self.config.ticket_layer.seal_with(
            &tgt_sched,
            0,
            &part.encode(self.config.codec, MsgType::EncTgsRepPart),
            &mut self.rng,
        ) {
            Ok(v) => v,
            Err(e) => return self.error(err_code::GENERIC, &e.to_string()),
        };

        self.trace_issue("tgs", &tgt.client, &req.service, &session_key, end_time);
        self.issued.push(IssueRecord { client: tgt.client, service: req.service, at_us: now_us });
        TgsRep { enc_part }.encode(self.config.codec)
    }

    /// Processes a whole batch of AS/TGS requests in one call, in order.
    ///
    /// This is the cluster hot path: the shard router has already
    /// grouped requests onto the KDC that owns their principals (see
    /// `database::shard_for`), so one call amortizes the tracer/clock
    /// plumbing that [`Service::handle`] re-establishes per packet, and
    /// the per-request key schedules and the preauth-open scratch
    /// buffer stay warm across the batch.
    ///
    /// Replies are byte-identical to feeding the same requests through
    /// [`Service::handle`] one at a time (same dispatch, same RNG
    /// order), with one deliberate divergence: an unrecognized leading
    /// byte yields an encoded GENERIC error rather than silence, so the
    /// output vector always lines up index-for-index with the batch.
    pub fn handle_batch(&mut self, ctx: &mut ServiceCtx, batch: &[(Vec<u8>, Endpoint)]) -> Vec<Vec<u8>> {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let now_us = ctx.local_time.0;
        let mut replies = Vec::with_capacity(batch.len());
        for (req, from) in batch {
            let reply = match req.first().copied().and_then(WireKind::from_u8) {
                Some(WireKind::AsReq) => self.as_exchange(req, *from, now_us),
                Some(WireKind::TgsReq) => self.tgs_exchange(req, *from, now_us),
                _ => self.error(err_code::GENERIC, "unexpected message kind"),
            };
            replies.push(reply);
        }
        replies
    }
}

impl Service for Kdc {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], from: Endpoint) -> Option<Vec<u8>> {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let now_us = ctx.local_time.0;
        let kind = req.first().copied().and_then(WireKind::from_u8)?;
        Some(match kind {
            WireKind::AsReq => self.as_exchange(req, from, now_us),
            WireKind::TgsReq => self.tgs_exchange(req, from, now_us),
            _ => self.error(err_code::GENERIC, "unexpected message kind"),
        })
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// A crash window ended: volatile state (challenges, rate counters,
    /// and — without persistence — the preauth replay cache) is gone.
    /// With persistence the cache restores from the last snapshot and
    /// fail-closes the gap since it was taken.
    fn on_restart(&mut self, ctx: &mut ServiceCtx) {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let boot_us = ctx.local_time.0;
        let skew = self.config.clock_skew_us;
        self.pending_hha.clear();
        self.req_counts.clear();
        self.restarts += 1;
        self.preauth_cache = if self.config.persist_replay_cache {
            self.disk
                .as_deref()
                .and_then(|b| ReplayCache::restore(b, boot_us))
                .unwrap_or_else(|| ReplayCache::boot_fresh(skew, boot_us))
        } else {
            // The V4 reality: a volatile cache that forgets every live
            // authenticator on reboot.
            ReplayCache::new(skew)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hha_key_depends_on_both_inputs() {
        let kc = DesKey::from_u64(0x1111).with_odd_parity();
        let kc2 = DesKey::from_u64(0x2222).with_odd_parity();
        assert_ne!(hha_key(&kc, 1), hha_key(&kc, 2));
        assert_ne!(hha_key(&kc, 1), hha_key(&kc2, 1));
        assert!(hha_key(&kc, 1).has_odd_parity());
    }

    #[test]
    fn kdc_constructs_with_tgs() {
        let mut db = KdcDatabase::new("ATHENA");
        db.add_tgs(DesKey::from_u64(0x777).with_odd_parity());
        db.add_user("pat", "hunter2");
        let kdc = Kdc::new(ProtocolConfig::v4(), db, 1);
        assert_eq!(kdc.realm(), "ATHENA");
    }

    #[test]
    fn eviction_prefers_expired_windows_then_oldest() {
        let mut m: BTreeMap<u32, (u64, u32)> = BTreeMap::new();
        for i in 0..8u32 {
            // Entries 0..4 started at t=0 (expired at now=2000, window
            // 1000); 4..8 started at t=1500 (still live).
            m.insert(i, (if i < 4 { 0 } else { 1_500 }, 0));
        }
        // At the bound: the expired four go first.
        let e = evict_for_insert(&mut m, 8, 2_000, 1_000, |v| v.0);
        assert_eq!(e, 4);
        assert!(m.keys().all(|k| *k >= 4), "live windows survived");
        // Nothing expired: the single oldest (smallest key among the
        // tied timestamps) is evicted to make room.
        let e = evict_for_insert(&mut m, 4, 2_000, 1_000, |v| v.0);
        assert_eq!(e, 1);
        assert!(!m.contains_key(&4));
        // Under the bound: no-op.
        assert_eq!(evict_for_insert(&mut m, 8, 2_000, 1_000, |v| v.0), 0);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn rate_maps_stay_bounded_under_distinct_sources() {
        let mut db = KdcDatabase::new("R");
        db.add_tgs(DesKey::from_u64(0x777).with_odd_parity());
        let mut config = ProtocolConfig::v4();
        config.kdc_rate_limit = Some(1_000_000);
        let mut kdc = Kdc::new(config, db, 7);
        for src in 0..(RATE_MAP_BOUND as u32 * 3) {
            kdc.rate_limited(src, 5_000_000 + u64::from(src));
        }
        assert!(kdc.req_counts.len() <= RATE_MAP_BOUND);
    }

    #[test]
    fn kdc_self_provisions_missing_tgs() {
        let db = KdcDatabase::new("ATHENA");
        let kdc = Kdc::new(ProtocolConfig::v4(), db, 1);
        // No panic, and the TGS principal now exists.
        assert!(kdc.db.lookup(&Principal::tgs("ATHENA")).is_ok());
    }
}
