//! The KDC's principal database.

use crate::error::KrbError;
use crate::principal::Principal;
use krb_crypto::des::DesKey;
use krb_crypto::s2k;
use std::collections::BTreeMap;

/// One database entry.
#[derive(Clone, Debug)]
pub struct DbEntry {
    /// The principal's long-term key.
    pub key: DesKey,
    /// Key version number.
    pub kvno: u32,
    /// True for service principals (random keys); false for users
    /// (password-derived keys).
    pub is_service: bool,
}

/// The realm database: principal -> long-term key.
#[derive(Clone, Debug, Default)]
pub struct KdcDatabase {
    realm: String,
    entries: BTreeMap<Principal, DbEntry>,
    /// Reusable string-to-key scratch state: bulk provisioning derives
    /// millions of keys, and must not pay one fresh buffer per call.
    deriver: s2k::Deriver,
}

impl KdcDatabase {
    /// An empty database for `realm`.
    pub fn new(realm: &str) -> Self {
        KdcDatabase { realm: realm.into(), entries: BTreeMap::new(), deriver: s2k::Deriver::new() }
    }

    /// The realm this database serves.
    pub fn realm(&self) -> &str {
        &self.realm
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of user (password-keyed) principals.
    pub fn user_count(&self) -> usize {
        self.entries.values().filter(|e| !e.is_service).count()
    }

    /// Registers a user with a password-derived key (salted, V5-style).
    pub fn add_user(&mut self, name: &str, password: &str) -> Principal {
        let p = Principal::user(name, &self.realm);
        let key = self.deriver.derive(password, &p.salt());
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: false });
        p
    }

    /// Registers a service with a given (random) key.
    pub fn add_service(&mut self, service: &str, host: &str, key: DesKey) -> Principal {
        let p = Principal::service(service, host, &self.realm);
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: true });
        p
    }

    /// Registers the realm's own TGS key.
    pub fn add_tgs(&mut self, key: DesKey) -> Principal {
        let p = Principal::tgs(&self.realm);
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: true });
        p
    }

    /// Registers an inter-realm key: the TGS of `remote_realm` as a
    /// principal of this realm. Both realms must install the same key.
    pub fn add_cross_realm(&mut self, remote_realm: &str, key: DesKey) -> Principal {
        let p = Principal::cross_realm_tgs(remote_realm, &self.realm);
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: true });
        p
    }

    /// Looks up a principal's entry.
    pub fn lookup(&self, p: &Principal) -> Result<&DbEntry, KrbError> {
        self.entries.get(p).ok_or_else(|| KrbError::UnknownPrincipal(p.to_string()))
    }

    /// True if the principal exists.
    pub fn contains(&self, p: &Principal) -> bool {
        self.entries.contains_key(p)
    }

    /// Changes a user's password (bumps the key version).
    pub fn change_password(&mut self, p: &Principal, new_password: &str) -> Result<(), KrbError> {
        let salt = p.salt();
        let e = self.entries.get_mut(p).ok_or_else(|| KrbError::UnknownPrincipal(p.to_string()))?;
        e.key = self.deriver.derive(new_password, &salt);
        e.kvno += 1;
        Ok(())
    }

    /// Iterates all principals (the attacker's "Kerberos equivalent of
    /// /etc/passwd is public" enumeration surface is names, not keys —
    /// this accessor exists for the KDC and tests, not the wire).
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.entries.keys()
    }
}

/// Deterministic shard routing: FNV-1a over the principal's canonical
/// `name\0instance\0realm` encoding, reduced mod `shards`.
///
/// This is the single source of truth for shard placement — the
/// database, the cluster testbed, and the gateway's shard-aware
/// upstream routing all call it, so a request for a principal always
/// lands on the KDC that owns that principal's key. It depends only on
/// the principal and the shard count: stable across processes, runs,
/// and platforms.
pub fn shard_for(p: &Principal, shards: usize) -> usize {
    shard_for_parts(&p.name, &p.instance, &p.realm, shards)
}

/// [`shard_for`] over the raw principal components (for callers that
/// have wire strings rather than a built `Principal`).
pub fn shard_for_parts(name: &str, instance: &str, realm: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [name, instance, realm] {
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // NUL separator keeps ("ab","c") and ("a","bc") apart.
        h ^= 0;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The deterministic password used by bulk provisioning for `name`
/// (exposed so benches and tests can log the provisioned users in).
pub fn bulk_password(name: &str) -> String {
    format!("pw!{name}")
}

/// The principal database partitioned into deterministic shards.
///
/// Users are placed by [`shard_for`]; realm-global entries (services,
/// the TGS key, inter-realm keys) are replicated into every shard so
/// any shard-owning KDC can mint tickets for any service. Each shard is
/// a plain [`KdcDatabase`] and can be handed to its own KDC via
/// [`ShardedDatabase::into_shards`].
#[derive(Clone, Debug)]
pub struct ShardedDatabase {
    realm: String,
    shards: Vec<KdcDatabase>,
}

impl ShardedDatabase {
    /// An empty sharded database for `realm`. A `shard_count` of zero is
    /// treated as one shard.
    pub fn new(realm: &str, shard_count: usize) -> Self {
        let n = shard_count.max(1);
        ShardedDatabase { realm: realm.into(), shards: vec![KdcDatabase::new(realm); n] }
    }

    /// The realm this database serves.
    pub fn realm(&self) -> &str {
        &self.realm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `p`.
    pub fn shard_index(&self, p: &Principal) -> usize {
        shard_for(p, self.shards.len())
    }

    /// Read access to shard `idx` (for tests and benches).
    pub fn shard(&self, idx: usize) -> &KdcDatabase {
        &self.shards[idx % self.shards.len().max(1)]
    }

    /// Registers a user in its owning shard.
    pub fn add_user(&mut self, name: &str, password: &str) -> Principal {
        let p = Principal::user(name, &self.realm);
        let idx = shard_for(&p, self.shards.len());
        self.shards[idx].add_user(name, password)
    }

    /// Bulk-provisions `count` users named `{prefix}{i}` with the
    /// deterministic [`bulk_password`], deriving every key through the
    /// shard's cached s2k path. Returns the number added.
    pub fn bulk_add_users(&mut self, prefix: &str, count: usize) -> usize {
        for i in 0..count {
            let name = format!("{prefix}{i}");
            self.add_user(&name, &bulk_password(&name));
        }
        count
    }

    /// Replicates a service key into every shard.
    pub fn add_service(&mut self, service: &str, host: &str, key: DesKey) -> Principal {
        let mut p = Principal::service(service, host, &self.realm);
        for shard in &mut self.shards {
            p = shard.add_service(service, host, key);
        }
        p
    }

    /// Replicates the realm's TGS key into every shard.
    pub fn add_tgs(&mut self, key: DesKey) -> Principal {
        let mut p = Principal::tgs(&self.realm);
        for shard in &mut self.shards {
            p = shard.add_tgs(key);
        }
        p
    }

    /// Replicates an inter-realm key into every shard.
    pub fn add_cross_realm(&mut self, remote_realm: &str, key: DesKey) -> Principal {
        let mut p = Principal::cross_realm_tgs(remote_realm, &self.realm);
        for shard in &mut self.shards {
            p = shard.add_cross_realm(remote_realm, key);
        }
        p
    }

    /// Looks up a principal in its owning shard. Replicated entries
    /// (services, TGS) exist in every shard, so routing everything
    /// through [`shard_for`] is total.
    pub fn lookup(&self, p: &Principal) -> Result<&DbEntry, KrbError> {
        self.shards[shard_for(p, self.shards.len())].lookup(p)
    }

    /// Per-shard user occupancy (replicated service entries excluded),
    /// the raw series behind the E18 load-skew metric.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(KdcDatabase::user_count).collect()
    }

    /// Load skew: max shard occupancy over mean shard occupancy, in
    /// thousandths (deterministic integer form for BENCH json). Returns
    /// 0 for an empty database.
    pub fn skew_millis(&self) -> u64 {
        let occ = self.occupancy();
        let total: usize = occ.iter().sum();
        let max = occ.iter().copied().max().unwrap_or(0);
        if total == 0 {
            return 0;
        }
        // max / (total / n) = max * n / total, scaled by 1000.
        (max as u64 * occ.len() as u64 * 1000) / total as u64
    }

    /// Consumes the sharded database, yielding one [`KdcDatabase`] per
    /// shard for handing to shard-owning KDCs.
    pub fn into_shards(self) -> Vec<KdcDatabase> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = KdcDatabase::new("ATHENA");
        let pat = db.add_user("pat", "hunter2");
        let nfs = db.add_service("nfs", "fs1", DesKey::from_u64(0x1234).with_odd_parity());
        let tgs = db.add_tgs(DesKey::from_u64(0x9999).with_odd_parity());
        assert!(!db.lookup(&pat).unwrap().is_service);
        assert!(db.lookup(&nfs).unwrap().is_service);
        assert!(db.lookup(&tgs).unwrap().is_service);
        assert!(db.lookup(&Principal::user("nobody", "ATHENA")).is_err());
    }

    #[test]
    fn password_change_bumps_kvno_and_key() {
        let mut db = KdcDatabase::new("R");
        let p = db.add_user("pat", "old");
        let k1 = db.lookup(&p).unwrap().key;
        db.change_password(&p, "new").unwrap();
        let e = db.lookup(&p).unwrap();
        assert_ne!(e.key, k1);
        assert_eq!(e.kvno, 2);
    }

    #[test]
    fn same_password_different_user_different_key() {
        let mut db = KdcDatabase::new("R");
        let a = db.add_user("alice", "hunter2");
        let b = db.add_user("bob", "hunter2");
        assert_ne!(db.lookup(&a).unwrap().key, db.lookup(&b).unwrap().key);
    }

    #[test]
    fn sharded_routing_matches_flat_database() {
        let mut flat = KdcDatabase::new("ATHENA");
        let mut sharded = ShardedDatabase::new("ATHENA", 4);
        let tgs_key = DesKey::from_u64(0x9999).with_odd_parity();
        flat.add_tgs(tgs_key);
        sharded.add_tgs(tgs_key);
        let svc_key = DesKey::from_u64(0x1234).with_odd_parity();
        flat.add_service("nfs", "fs1", svc_key);
        sharded.add_service("nfs", "fs1", svc_key);
        for i in 0..64 {
            let name = format!("u{i}");
            flat.add_user(&name, &bulk_password(&name));
            sharded.add_user(&name, &bulk_password(&name));
        }
        // Every flat lookup agrees with the routed sharded lookup.
        for p in flat.principals() {
            let a = flat.lookup(p).unwrap();
            let b = sharded.lookup(p).unwrap();
            assert_eq!(a.key, b.key, "{p}");
            assert_eq!(a.kvno, b.kvno, "{p}");
        }
        // Replicated entries exist in every shard; users in exactly one.
        let total_users: usize = sharded.occupancy().iter().sum();
        assert_eq!(total_users, 64);
        for i in 0..sharded.shard_count() {
            assert!(sharded.shard(i).contains(&Principal::tgs("ATHENA")));
            assert!(sharded.shard(i).contains(&Principal::service("nfs", "fs1", "ATHENA")));
        }
    }

    #[test]
    fn bulk_provisioning_derives_real_keys() {
        let mut sharded = ShardedDatabase::new("R", 4);
        assert_eq!(sharded.bulk_add_users("u", 100), 100);
        let p = Principal::user("u42", "R");
        let expect = s2k::string_to_key_v5(&bulk_password("u42"), &p.salt());
        assert_eq!(sharded.lookup(&p).unwrap().key, expect);
        assert!(sharded.skew_millis() >= 1000, "max is never below mean");
    }

    #[test]
    fn shard_for_is_total_and_stable() {
        for shards in [1usize, 2, 4, 7, 16] {
            for i in 0..50 {
                let p = Principal::user(&format!("user{i}"), "REALM");
                let s = shard_for(&p, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(&p, shards), "routing must be deterministic");
                assert_eq!(s, shard_for_parts(&p.name, &p.instance, &p.realm, shards));
            }
        }
    }

    #[test]
    fn cross_realm_principal_shape() {
        let mut db = KdcDatabase::new("LOCAL");
        let x = db.add_cross_realm("REMOTE", DesKey::from_u64(5).with_odd_parity());
        assert!(x.is_tgs());
        assert_eq!(x.realm, "LOCAL");
        assert!(db.contains(&x));
    }
}
