//! The KDC's principal database.

use crate::error::KrbError;
use crate::principal::Principal;
use krb_crypto::des::DesKey;
use krb_crypto::s2k;
use std::collections::BTreeMap;

/// One database entry.
#[derive(Clone, Debug)]
pub struct DbEntry {
    /// The principal's long-term key.
    pub key: DesKey,
    /// Key version number.
    pub kvno: u32,
    /// True for service principals (random keys); false for users
    /// (password-derived keys).
    pub is_service: bool,
}

/// The realm database: principal -> long-term key.
#[derive(Clone, Debug, Default)]
pub struct KdcDatabase {
    realm: String,
    entries: BTreeMap<Principal, DbEntry>,
}

impl KdcDatabase {
    /// An empty database for `realm`.
    pub fn new(realm: &str) -> Self {
        KdcDatabase { realm: realm.into(), entries: BTreeMap::new() }
    }

    /// The realm this database serves.
    pub fn realm(&self) -> &str {
        &self.realm
    }

    /// Registers a user with a password-derived key (salted, V5-style).
    pub fn add_user(&mut self, name: &str, password: &str) -> Principal {
        let p = Principal::user(name, &self.realm);
        let key = s2k::string_to_key_v5(password, &p.salt());
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: false });
        p
    }

    /// Registers a service with a given (random) key.
    pub fn add_service(&mut self, service: &str, host: &str, key: DesKey) -> Principal {
        let p = Principal::service(service, host, &self.realm);
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: true });
        p
    }

    /// Registers the realm's own TGS key.
    pub fn add_tgs(&mut self, key: DesKey) -> Principal {
        let p = Principal::tgs(&self.realm);
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: true });
        p
    }

    /// Registers an inter-realm key: the TGS of `remote_realm` as a
    /// principal of this realm. Both realms must install the same key.
    pub fn add_cross_realm(&mut self, remote_realm: &str, key: DesKey) -> Principal {
        let p = Principal::cross_realm_tgs(remote_realm, &self.realm);
        self.entries.insert(p.clone(), DbEntry { key, kvno: 1, is_service: true });
        p
    }

    /// Looks up a principal's entry.
    pub fn lookup(&self, p: &Principal) -> Result<&DbEntry, KrbError> {
        self.entries.get(p).ok_or_else(|| KrbError::UnknownPrincipal(p.to_string()))
    }

    /// True if the principal exists.
    pub fn contains(&self, p: &Principal) -> bool {
        self.entries.contains_key(p)
    }

    /// Changes a user's password (bumps the key version).
    pub fn change_password(&mut self, p: &Principal, new_password: &str) -> Result<(), KrbError> {
        let salt = p.salt();
        let e = self.entries.get_mut(p).ok_or_else(|| KrbError::UnknownPrincipal(p.to_string()))?;
        e.key = s2k::string_to_key_v5(new_password, &salt);
        e.kvno += 1;
        Ok(())
    }

    /// Iterates all principals (the attacker's "Kerberos equivalent of
    /// /etc/passwd is public" enumeration surface is names, not keys —
    /// this accessor exists for the KDC and tests, not the wire).
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = KdcDatabase::new("ATHENA");
        let pat = db.add_user("pat", "hunter2");
        let nfs = db.add_service("nfs", "fs1", DesKey::from_u64(0x1234).with_odd_parity());
        let tgs = db.add_tgs(DesKey::from_u64(0x9999).with_odd_parity());
        assert!(!db.lookup(&pat).unwrap().is_service);
        assert!(db.lookup(&nfs).unwrap().is_service);
        assert!(db.lookup(&tgs).unwrap().is_service);
        assert!(db.lookup(&Principal::user("nobody", "ATHENA")).is_err());
    }

    #[test]
    fn password_change_bumps_kvno_and_key() {
        let mut db = KdcDatabase::new("R");
        let p = db.add_user("pat", "old");
        let k1 = db.lookup(&p).unwrap().key;
        db.change_password(&p, "new").unwrap();
        let e = db.lookup(&p).unwrap();
        assert_ne!(e.key, k1);
        assert_eq!(e.kvno, 2);
    }

    #[test]
    fn same_password_different_user_different_key() {
        let mut db = KdcDatabase::new("R");
        let a = db.add_user("alice", "hunter2");
        let b = db.add_user("bob", "hunter2");
        assert_ne!(db.lookup(&a).unwrap().key, db.lookup(&b).unwrap().key);
    }

    #[test]
    fn cross_realm_principal_shape() {
        let mut db = KdcDatabase::new("LOCAL");
        let x = db.add_cross_realm("REMOTE", DesKey::from_u64(5).with_odd_parity());
        assert!(x.is_tgs());
        assert_eq!(x.realm, "LOCAL");
        assert!(db.contains(&x));
    }
}
