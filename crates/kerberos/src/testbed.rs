//! A deployable campus testbed: one call builds a realm with a KDC,
//! user workstations, and kerberized servers on a simulated network.
//!
//! Used by the integration tests, the attack library, the examples, and
//! the benchmarks, so every consumer exercises the same deployment.

use crate::appserver::{AppLogic, AppServer};
use crate::config::ProtocolConfig;
use crate::database::{shard_for, KdcDatabase, ShardedDatabase};
use crate::gateway::{KrbFrontend, KrbGateway};
use crate::kdc::{Kdc, KDC_PORT};
use crate::principal::Principal;
use crate::services::{BackupServerLogic, EchoLogic, FileServerLogic, MailServerLogic};
use krb_crypto::des::DesKey;
use krb_crypto::rng::{Drbg, RandomSource};
use krb_gateway::GatewayConfig;
use simnet::{Addr, Endpoint, Host, HostId, Network};
use std::collections::BTreeMap;

/// The application-server port used throughout the testbed.
pub const APP_PORT: u16 = 2001;
/// The client-side ephemeral port used throughout the testbed.
pub const CLIENT_PORT: u16 = 1024;

/// One deployed realm.
pub struct DeployedRealm {
    /// Realm name.
    pub name: String,
    /// Active configuration.
    pub config: ProtocolConfig,
    /// KDC endpoint (the master).
    pub kdc_ep: Endpoint,
    /// KDC host id (the master).
    pub kdc_host: HostId,
    /// Slave-KDC replica endpoints; empty unless
    /// [`DeployedRealm::add_kdc_replicas`] was called.
    pub kdc_replica_eps: Vec<Endpoint>,
    /// Slave-KDC replica host ids.
    pub kdc_replica_hosts: Vec<HostId>,
    /// Gateway (admission tier) endpoint; `None` unless
    /// [`DeployedRealm::add_gateway`] was called.
    pub gateway_ep: Option<Endpoint>,
    /// Gateway host id.
    pub gateway_host: Option<HostId>,
    /// user name -> workstation endpoint.
    pub user_eps: BTreeMap<String, Endpoint>,
    /// user name -> workstation host id.
    pub user_hosts: BTreeMap<String, HostId>,
    /// user name -> password (so tests can act as the user).
    pub passwords: BTreeMap<String, String>,
    /// service name -> server endpoint.
    pub service_eps: BTreeMap<String, Endpoint>,
    /// service name -> server host id.
    pub service_hosts: BTreeMap<String, HostId>,
    /// service name -> principal.
    pub service_principals: BTreeMap<String, Principal>,
    /// service name -> long-term key (the KDC knows it; tests may need
    /// it to play the server).
    pub service_keys: BTreeMap<String, DesKey>,
}

impl DeployedRealm {
    /// The principal for a user name.
    pub fn user(&self, name: &str) -> Principal {
        Principal::user(name, &self.name)
    }

    /// The endpoint of a user's workstation.
    ///
    /// # Panics
    ///
    /// Panics if the user was not deployed.
    pub fn user_ep(&self, name: &str) -> Endpoint {
        self.user_eps[name]
    }

    /// The endpoint of a service.
    ///
    /// # Panics
    ///
    /// Panics if the service was not deployed.
    pub fn service_ep(&self, name: &str) -> Endpoint {
        self.service_eps[name]
    }

    /// The principal of a service.
    ///
    /// # Panics
    ///
    /// Panics if the service was not deployed.
    pub fn service(&self, name: &str) -> Principal {
        self.service_principals[name].clone()
    }

    /// Runs `f` with mutable access to a deployed [`AppServer`].
    ///
    /// # Panics
    ///
    /// Panics if the service was not deployed or is not an `AppServer`.
    pub fn with_app_server<R>(
        &self,
        net: &mut Network,
        service: &str,
        f: impl FnOnce(&mut AppServer) -> R,
    ) -> R {
        let hid = self.service_hosts[service];
        let svc = net
            .host_mut(hid)
            .service_mut(APP_PORT)
            .expect("service bound")
            .as_any_mut()
            .expect("inspectable")
            .downcast_mut::<AppServer>()
            .expect("an AppServer");
        f(svc)
    }

    /// Runs `f` with mutable access to the deployed [`Kdc`].
    ///
    /// # Panics
    ///
    /// Panics if the KDC host does not hold a `Kdc`.
    pub fn with_kdc<R>(&self, net: &mut Network, f: impl FnOnce(&mut Kdc) -> R) -> R {
        let svc = net
            .host_mut(self.kdc_host)
            .service_mut(KDC_PORT)
            .expect("KDC bound")
            .as_any_mut()
            .expect("inspectable")
            .downcast_mut::<Kdc>()
            .expect("a Kdc");
        f(svc)
    }

    /// Every KDC endpoint, master first: the list a client walks on
    /// retry, exactly as a real client walks the KDC list in its
    /// configuration file.
    pub fn kdc_eps(&self) -> Vec<Endpoint> {
        let mut eps = vec![self.kdc_ep];
        eps.extend_from_slice(&self.kdc_replica_eps);
        eps
    }

    /// The endpoints clients should contact for AS/TGS traffic: the
    /// gateway alone when one is deployed (the KDCs sit behind it),
    /// otherwise the KDC list itself.
    pub fn kdc_contact_eps(&self) -> Vec<Endpoint> {
        match self.gateway_ep {
            Some(ep) => vec![ep],
            None => self.kdc_eps(),
        }
    }

    /// Deploys the admission-control gateway at `10.<subnet>.0.254`,
    /// fronting every KDC deployed so far (master plus replicas, in
    /// rotation order). Call *after* [`DeployedRealm::add_kdc_replicas`]
    /// so the gateway load-balances across the whole cluster. Point
    /// clients at [`DeployedRealm::kdc_contact_eps`].
    pub fn add_gateway(&mut self, net: &mut Network, gw_config: GatewayConfig) {
        let subnet = self.kdc_ep.addr.0.to_be_bytes()[1];
        let addr = Addr::new(10, subnet, 0, 254);
        let frontend = KrbFrontend::new(self.config.codec);
        let gateway = KrbGateway::new(gw_config, frontend, self.kdc_eps());
        let mut host =
            Host::new(&format!("krbgate.{}", self.name), vec![addr]).multi_user();
        host.bind(KDC_PORT, Box::new(gateway));
        let hid = net.add_host(host);
        self.gateway_ep = Some(Endpoint::new(addr, KDC_PORT));
        self.gateway_host = Some(hid);
    }

    /// Runs `f` with mutable access to the deployed [`KrbGateway`].
    ///
    /// # Panics
    ///
    /// Panics if no gateway was deployed.
    pub fn with_gateway<R>(&self, net: &mut Network, f: impl FnOnce(&mut KrbGateway) -> R) -> R {
        let hid = self.gateway_host.expect("gateway deployed");
        let svc = net
            .host_mut(hid)
            .service_mut(KDC_PORT)
            .expect("gateway bound")
            .as_any_mut()
            .expect("inspectable")
            .downcast_mut::<KrbGateway>()
            .expect("a KrbGateway");
        f(svc)
    }

    /// Deploys `n` slave-KDC replicas at `10.<subnet>.0.<249-i>`, each
    /// holding a propagated copy of the master database and TGS key.
    /// Kerberos runs read-only slaves precisely so that "an occasional
    /// server failure" does not take authentication down; replicas here
    /// serve AS and TGS exchanges identically to the master.
    pub fn add_kdc_replicas(&mut self, net: &mut Network, n: usize, seed: u64) {
        let subnet = self.kdc_ep.addr.0.to_be_bytes()[1];
        let db = self.with_kdc(net, |k| k.db.clone());
        let config = self.config.clone();
        for i in 0..n {
            let addr = Addr::new(10, subnet, 0, 249 - i as u8);
            let mut host =
                Host::new(&format!("kerberos-{}.{}", i + 2, self.name), vec![addr]).multi_user();
            host.bind(
                KDC_PORT,
                Box::new(Kdc::new(config.clone(), db.clone(), seed ^ 0x7265_706c ^ (i as u64))),
            );
            let hid = net.add_host(host);
            self.kdc_replica_eps.push(Endpoint::new(addr, KDC_PORT));
            self.kdc_replica_hosts.push(hid);
        }
    }
}

/// Builds the application logic for a well-known service name.
fn logic_for(service: &str) -> Box<dyn AppLogic> {
    match service {
        "files" => Box::new(FileServerLogic::new()),
        "mail" => Box::new(MailServerLogic::new()),
        "backup" => Box::new(BackupServerLogic::new()),
        _ => Box::new(EchoLogic),
    }
}

/// Deploys a realm onto `net`: a KDC at `10.<idx>.0.250`, one
/// workstation per user at `10.<idx>.0.<n>`, one server host per service
/// at `10.<idx>.1.<n>`.
pub fn deploy_realm(
    net: &mut Network,
    realm: &str,
    subnet: u8,
    config: &ProtocolConfig,
    users: &[(&str, &str)],
    services: &[&str],
    seed: u64,
) -> DeployedRealm {
    let mut rng = Drbg::new(seed);
    let mut db = KdcDatabase::new(realm);
    db.add_tgs(rng.gen_des_key());

    let mut deployed = DeployedRealm {
        name: realm.to_string(),
        config: config.clone(),
        kdc_ep: Endpoint::new(Addr::new(10, subnet, 0, 250), KDC_PORT),
        kdc_host: HostId(0), // fixed up below
        kdc_replica_eps: Vec::new(),
        kdc_replica_hosts: Vec::new(),
        gateway_ep: None,
        gateway_host: None,
        user_eps: BTreeMap::new(),
        user_hosts: BTreeMap::new(),
        passwords: BTreeMap::new(),
        service_eps: BTreeMap::new(),
        service_hosts: BTreeMap::new(),
        service_principals: BTreeMap::new(),
        service_keys: BTreeMap::new(),
    };

    // Users and their workstations.
    for (i, (name, password)) in users.iter().enumerate() {
        db.add_user(name, password);
        let addr = Addr::new(10, subnet, 0, (i + 1) as u8);
        let hid = net.add_host(Host::new(&format!("ws-{name}.{realm}"), vec![addr]));
        deployed.user_eps.insert(name.to_string(), Endpoint::new(addr, CLIENT_PORT));
        deployed.user_hosts.insert(name.to_string(), hid);
        deployed.passwords.insert(name.to_string(), password.to_string());
    }

    // Services and their hosts.
    for (i, service) in services.iter().enumerate() {
        let key = rng.gen_des_key();
        let hostname = format!("{service}host");
        let principal = db.add_service(service, &hostname, key);
        let addr = Addr::new(10, subnet, 1, (i + 1) as u8);
        let mut host = Host::new(&format!("{hostname}.{realm}"), vec![addr]).multi_user();
        host.bind(
            APP_PORT,
            Box::new(AppServer::new(config.clone(), principal.clone(), key, logic_for(service), seed ^ (i as u64 + 1))),
        );
        let hid = net.add_host(host);
        deployed.service_eps.insert(service.to_string(), Endpoint::new(addr, APP_PORT));
        deployed.service_hosts.insert(service.to_string(), hid);
        deployed.service_principals.insert(service.to_string(), principal);
        deployed.service_keys.insert(service.to_string(), key);
    }

    // The KDC host.
    let kdc_addr = Addr::new(10, subnet, 0, 250);
    let mut kdc_host = Host::new(&format!("kerberos.{realm}"), vec![kdc_addr]).multi_user();
    kdc_host.bind(KDC_PORT, Box::new(Kdc::new(config.clone(), db, seed ^ 0x6b64_6373)));
    deployed.kdc_host = net.add_host(kdc_host);

    deployed
}

/// A deployed sharded KDC cluster: one primary KDC per database shard,
/// optional per-shard replicas, and a shard-aware gateway in front —
/// the million-principal deployment shape (E18). Composes the pieces
/// the smaller testbeds introduced: [`ShardedDatabase`] partitioning,
/// [`DeployedRealm::add_kdc_replicas`]-style failover, and the PR 7
/// admission gateway, now routing AS traffic to the shard that owns
/// the principal.
pub struct KdcCluster {
    /// Realm name.
    pub name: String,
    /// Active configuration.
    pub config: ProtocolConfig,
    /// Shard `i`'s primary KDC endpoint.
    pub shard_primary_eps: Vec<Endpoint>,
    /// Shard `i`'s primary KDC host id.
    pub shard_primary_hosts: Vec<HostId>,
    /// Shard `i`'s replica endpoints (failover order).
    pub shard_replica_eps: Vec<Vec<Endpoint>>,
    /// Shard `i`'s replica host ids.
    pub shard_replica_hosts: Vec<Vec<HostId>>,
    /// The shard-aware gateway endpoint — the only address clients use.
    pub gateway_ep: Endpoint,
    /// Gateway host id.
    pub gateway_host: HostId,
    /// Workstation endpoints for driving client traffic.
    pub client_eps: Vec<Endpoint>,
    /// service name -> server endpoint.
    pub service_eps: BTreeMap<String, Endpoint>,
    /// service name -> principal.
    pub service_principals: BTreeMap<String, Principal>,
    /// Per-shard user occupancy captured at provisioning time.
    pub occupancy: Vec<usize>,
    /// Load skew (max/mean shard occupancy, thousandths) at
    /// provisioning time.
    pub skew_millis: u64,
}

impl KdcCluster {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_primary_eps.len()
    }

    /// The shard index owning `p`.
    pub fn shard_of(&self, p: &Principal) -> usize {
        shard_for(p, self.shard_primary_eps.len())
    }

    /// The KDC endpoints able to serve `p`, primary first — the list a
    /// shard-aware client would walk directly, bypassing the gateway.
    pub fn kdc_eps_for(&self, p: &Principal) -> Vec<Endpoint> {
        let i = self.shard_of(p);
        let mut eps = vec![self.shard_primary_eps[i]];
        eps.extend_from_slice(&self.shard_replica_eps[i]);
        eps
    }

    /// What clients contact for AS/TGS traffic: the gateway.
    pub fn contact_eps(&self) -> Vec<Endpoint> {
        vec![self.gateway_ep]
    }

    /// Runs `f` with mutable access to shard `i`'s primary [`Kdc`].
    ///
    /// # Panics
    ///
    /// Panics if the host does not hold a `Kdc`.
    pub fn with_shard_kdc<R>(
        &self,
        net: &mut Network,
        shard: usize,
        f: impl FnOnce(&mut Kdc) -> R,
    ) -> R {
        let svc = net
            .host_mut(self.shard_primary_hosts[shard])
            .service_mut(KDC_PORT)
            .expect("KDC bound")
            .as_any_mut()
            .expect("inspectable")
            .downcast_mut::<Kdc>()
            .expect("a Kdc");
        f(svc)
    }
}

/// Deploys a sharded KDC cluster onto `net`: `users_bulk` principals
/// named `u0..` (passwords from [`crate::database::bulk_password`])
/// partitioned across `shards` primaries at `10.<subnet>.2.(10+i)`,
/// `replicas_per_shard` propagated replicas each at
/// `10.<subnet>.2.(100+8i+r)`, app servers at `10.<subnet>.1.<n>`,
/// `client_slots` workstations at `10.<subnet>.0.<n>`, and the
/// shard-aware gateway at `10.<subnet>.0.254`.
#[allow(clippy::too_many_arguments)]
pub fn deploy_cluster(
    net: &mut Network,
    realm: &str,
    subnet: u8,
    config: &ProtocolConfig,
    shards: usize,
    replicas_per_shard: usize,
    users_bulk: usize,
    client_slots: usize,
    services: &[&str],
    gw_config: GatewayConfig,
    seed: u64,
) -> KdcCluster {
    let mut rng = Drbg::new(seed);
    let mut db = ShardedDatabase::new(realm, shards);
    db.add_tgs(rng.gen_des_key());

    let mut service_eps = BTreeMap::new();
    let mut service_principals = BTreeMap::new();
    for (i, service) in services.iter().enumerate() {
        let key = rng.gen_des_key();
        let hostname = format!("{service}host");
        let principal = db.add_service(service, &hostname, key);
        let addr = Addr::new(10, subnet, 1, (i + 1) as u8);
        let mut host = Host::new(&format!("{hostname}.{realm}"), vec![addr]).multi_user();
        host.bind(
            APP_PORT,
            Box::new(AppServer::new(
                config.clone(),
                principal.clone(),
                key,
                logic_for(service),
                seed ^ (i as u64 + 1),
            )),
        );
        net.add_host(host);
        service_eps.insert(service.to_string(), Endpoint::new(addr, APP_PORT));
        service_principals.insert(service.to_string(), principal);
    }

    db.bulk_add_users("u", users_bulk);
    let occupancy = db.occupancy();
    let skew_millis = db.skew_millis();

    // One primary (plus propagated replicas) per shard. Every KDC of a
    // shard holds that shard's database copy and the same TGS key.
    let mut shard_primary_eps = Vec::with_capacity(shards);
    let mut shard_primary_hosts = Vec::with_capacity(shards);
    let mut shard_replica_eps = Vec::with_capacity(shards);
    let mut shard_replica_hosts = Vec::with_capacity(shards);
    let mut groups: Vec<Vec<Endpoint>> = Vec::with_capacity(shards);
    for (i, shard_db) in db.into_shards().into_iter().enumerate() {
        let addr = Addr::new(10, subnet, 2, (10 + i) as u8);
        let mut host =
            Host::new(&format!("kerberos-s{i}.{realm}"), vec![addr]).multi_user();
        host.bind(
            KDC_PORT,
            Box::new(Kdc::new(config.clone(), shard_db.clone(), seed ^ 0x6b64_6373 ^ ((i as u64) << 8))),
        );
        let hid = net.add_host(host);
        let primary_ep = Endpoint::new(addr, KDC_PORT);
        shard_primary_eps.push(primary_ep);
        shard_primary_hosts.push(hid);

        let mut reps = Vec::with_capacity(replicas_per_shard);
        let mut rep_hosts = Vec::with_capacity(replicas_per_shard);
        for r in 0..replicas_per_shard {
            let raddr = Addr::new(10, subnet, 2, (100 + i * 8 + r) as u8);
            let mut rhost =
                Host::new(&format!("kerberos-s{i}r{r}.{realm}"), vec![raddr]).multi_user();
            rhost.bind(
                KDC_PORT,
                Box::new(Kdc::new(
                    config.clone(),
                    shard_db.clone(),
                    seed ^ 0x7265_706c ^ ((i as u64) << 8) ^ r as u64,
                )),
            );
            rep_hosts.push(net.add_host(rhost));
            reps.push(Endpoint::new(raddr, KDC_PORT));
        }
        let mut group = vec![primary_ep];
        group.extend_from_slice(&reps);
        groups.push(group);
        shard_replica_eps.push(reps);
        shard_replica_hosts.push(rep_hosts);
    }

    // The shard-aware gateway is the cluster's front door.
    let gw_addr = Addr::new(10, subnet, 0, 254);
    let gateway =
        KrbGateway::new_sharded(gw_config, KrbFrontend::new(config.codec), groups);
    let mut gw_host = Host::new(&format!("krbgate.{realm}"), vec![gw_addr]).multi_user();
    gw_host.bind(KDC_PORT, Box::new(gateway));
    let gateway_host = net.add_host(gw_host);
    let gateway_ep = Endpoint::new(gw_addr, KDC_PORT);

    // Workstations to drive traffic from.
    let mut client_eps = Vec::with_capacity(client_slots);
    for i in 0..client_slots {
        let addr = Addr::new(10, subnet, 0, (i + 1) as u8);
        net.add_host(Host::new(&format!("ws-{i}.{realm}"), vec![addr]));
        client_eps.push(Endpoint::new(addr, CLIENT_PORT));
    }

    KdcCluster {
        name: realm.to_string(),
        config: config.clone(),
        shard_primary_eps,
        shard_primary_hosts,
        shard_replica_eps,
        shard_replica_hosts,
        gateway_ep,
        gateway_host,
        client_eps,
        service_eps,
        service_principals,
        occupancy,
        skew_millis,
    }
}

/// The standard small campus used by tests and benchmarks: users pat,
/// sam, zach (zach is the adversary's account — a legitimate but
/// malicious insider); services echo, files, mail, backup.
pub fn standard_campus(net: &mut Network, config: &ProtocolConfig, seed: u64) -> DeployedRealm {
    deploy_realm(
        net,
        "ATHENA.MIT.EDU",
        0,
        config,
        &[("pat", "correct-horse-battery"), ("sam", "wombat7"), ("zach", "attacker-owned")],
        &["echo", "files", "mail", "backup"],
        seed,
    )
}
