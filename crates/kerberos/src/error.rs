//! Protocol-level errors.

use std::fmt;

/// Errors raised by protocol processing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KrbError {
    /// A message failed to parse.
    Decode(&'static str),
    /// A body field failed to parse, with position info: which field the
    /// decoder was reading and the byte offset (relative to the envelope
    /// body) where it gave up.
    DecodeAt {
        /// What went wrong.
        what: &'static str,
        /// The field being decoded (`""` when the caller did not label
        /// the read).
        field: &'static str,
        /// Byte offset into the body where the failure was detected.
        offset: usize,
    },
    /// A codec envelope failed to open: names the codec, the envelope
    /// field (magic, version, msg-type, length, header), the byte offset
    /// of that field, and the offending byte when there is one.
    Envelope {
        /// Which codec was opening (`"typed"` or `"wire"`).
        codec: &'static str,
        /// The envelope field that failed.
        field: &'static str,
        /// Byte offset of the failing field.
        offset: usize,
        /// The byte found there, when the failure is a bad value rather
        /// than missing data.
        found: Option<u8>,
    },
    /// Wrong message type tag (typed/wire codecs only).
    WrongType {
        /// Expected tag.
        expected: u8,
        /// Tag found.
        found: u8,
    },
    /// A checksum failed to verify.
    BadChecksum,
    /// Integrity failure in the encryption layer.
    IntegrityFailure,
    /// Authenticator or message timestamp outside the permitted skew.
    SkewExceeded {
        /// Observed difference, microseconds.
        diff_us: u64,
        /// Permitted skew, microseconds.
        limit_us: u64,
    },
    /// A replayed authenticator or message was detected.
    Replay,
    /// Ticket not yet valid or expired.
    TicketExpired,
    /// Ticket address does not match the peer.
    AddressMismatch,
    /// Unknown principal.
    UnknownPrincipal(String),
    /// Preauthentication required but missing or invalid.
    PreauthFailed,
    /// The client failed a challenge/response.
    ChallengeFailed,
    /// Server requires the challenge/response option (method-data).
    ChallengeRequired {
        /// The nonce the client must return encrypted.
        challenge: u64,
    },
    /// Policy denied the request (options not allowed, rate limit, trust).
    PolicyDenied(&'static str),
    /// Cross-realm path could not be resolved or was not trusted.
    RealmPathRejected(String),
    /// Crypto-layer failure.
    Crypto(String),
    /// Network-layer failure.
    Net(String),
    /// Server-side failure with a protocol error message attached.
    Remote(String),
    /// Every attempt in the retry budget failed; `last` is the final
    /// attempt's error.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's error, rendered.
        last: String,
    },
    /// The server is inside its fail-closed startup window and cannot
    /// prove the request is not a replay; retry with fresh material.
    FailClosed,
    /// The admission tier (gateway) refused the request under load —
    /// rate limit, full queue, or penalty window. Purely a congestion
    /// signal: it consumes no failover budget and says nothing about
    /// the client's credentials.
    ServerBusy,
}

impl fmt::Display for KrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KrbError::Decode(what) => write!(f, "malformed message: {what}"),
            KrbError::DecodeAt { what, field, offset } => {
                if field.is_empty() {
                    write!(f, "malformed message: {what} at byte {offset}")
                } else {
                    write!(f, "malformed message: {what} in field '{field}' at byte {offset}")
                }
            }
            KrbError::Envelope { codec, field, offset, found } => {
                write!(f, "bad {codec} envelope: {field} at byte {offset}")?;
                if let Some(b) = found {
                    write!(f, " (found 0x{b:02x})")?;
                }
                Ok(())
            }
            KrbError::WrongType { expected, found } => {
                write!(f, "wrong message type: expected {expected}, found {found}")
            }
            KrbError::BadChecksum => write!(f, "checksum verification failed"),
            KrbError::IntegrityFailure => write!(f, "encryption-layer integrity failure"),
            KrbError::SkewExceeded { diff_us, limit_us } => {
                write!(f, "clock skew {diff_us}us exceeds limit {limit_us}us")
            }
            KrbError::Replay => write!(f, "replay detected"),
            KrbError::TicketExpired => write!(f, "ticket expired or not yet valid"),
            KrbError::AddressMismatch => write!(f, "ticket address mismatch"),
            KrbError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            KrbError::PreauthFailed => write!(f, "preauthentication failed"),
            KrbError::ChallengeFailed => write!(f, "challenge/response failed"),
            KrbError::ChallengeRequired { .. } => write!(f, "server requires challenge/response"),
            KrbError::PolicyDenied(why) => write!(f, "policy denied: {why}"),
            KrbError::RealmPathRejected(r) => write!(f, "realm path rejected: {r}"),
            KrbError::Crypto(e) => write!(f, "crypto failure: {e}"),
            KrbError::Net(e) => write!(f, "network failure: {e}"),
            KrbError::Remote(e) => write!(f, "remote error: {e}"),
            KrbError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
            KrbError::FailClosed => {
                write!(f, "server fail-closed (post-restart window); retry later")
            }
            KrbError::ServerBusy => {
                write!(f, "server busy (admission control refused the request); back off and retry")
            }
        }
    }
}

impl std::error::Error for KrbError {}

impl From<krb_crypto::CryptoError> for KrbError {
    fn from(e: krb_crypto::CryptoError) -> Self {
        KrbError::Crypto(e.to_string())
    }
}

impl From<simnet::NetError> for KrbError {
    fn from(e: simnet::NetError) -> Self {
        KrbError::Net(e.to_string())
    }
}
