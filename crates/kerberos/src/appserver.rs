//! Application servers: AP-exchange verification, session establishment,
//! and command dispatch — plus the client-side connection flow.

use crate::authenticator::Authenticator;
use crate::client::{client_local_time_us, Credential};
use crate::config::{AppProtection, AuthStyle, ProtocolConfig, RetryPolicy};
use crate::encoding::Codec;
use crate::error::KrbError;
use crate::flags::TicketFlags;
use crate::messages::{
    deframe, err_code, frame, ApRep, ApReq, EncApRepPart, KrbErrorMsg, WireKind,
};
use crate::principal::Principal;
use crate::replay_cache::{CacheVerdict, ReplayCache};
use crate::retry::{self, reply_transient};
use crate::session::{Direction, Session};
use crate::ticket::Ticket;
use krb_crypto::des::DesKey;
use krb_crypto::rng::{Drbg, RandomSource};
use krb_trace::{EventKind, Tracer, Value};
use simnet::{Endpoint, NetError, Network, Service, ServiceCtx, SimDuration};
use std::collections::BTreeMap;

/// Application behavior behind the authentication layer.
pub trait AppLogic {
    /// Handles one authenticated command from `client`; returns the
    /// reply payload.
    fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8>;

    /// Downcast support for test and attack forensics.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// An authentication decision, recorded for attack forensics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthEvent {
    /// The server accepted an AP exchange as `client` coming from
    /// `from`.
    Accepted {
        /// Authenticated identity.
        client: Principal,
        /// Network origin.
        from: Endpoint,
    },
    /// The server rejected an attempt.
    Rejected {
        /// Why.
        reason: String,
        /// Network origin.
        from: Endpoint,
    },
}

/// A kerberized application server bound to one port.
pub struct AppServer {
    /// Deployment configuration.
    pub config: ProtocolConfig,
    /// This service's principal.
    pub principal: Principal,
    service_key: DesKey,
    rng: Drbg,
    replay_cache: ReplayCache,
    /// Challenge/response state: peer -> (nonce, ticket).
    pending: BTreeMap<Endpoint, (u64, Ticket)>,
    /// Established sessions by peer endpoint.
    pub sessions: BTreeMap<Endpoint, Session>,
    /// Plain-mode authorization: endpoint -> authenticated principal.
    authorized: BTreeMap<Endpoint, Principal>,
    /// Application behavior.
    pub logic: Box<dyn AppLogic>,
    /// Authentication decisions, in order.
    pub auth_log: Vec<AuthEvent>,
    /// Simulated stable storage: the last replay-cache snapshot (the
    /// only state that survives a crash window besides the service key).
    disk: Option<Vec<u8>>,
    last_snapshot_us: u64,
    /// Restarts observed (crash windows ridden out).
    pub restarts: u32,
    /// The network's tracer, refreshed from the service context on
    /// every dispatch (see [`crate::kdc::Kdc`] for the pattern).
    trace: Tracer,
    /// Network true time at dispatch, µs — the timestamp events carry.
    trace_now_us: u64,
}

impl AppServer {
    /// Builds a server for `principal` holding `service_key`.
    pub fn new(
        config: ProtocolConfig,
        principal: Principal,
        service_key: DesKey,
        logic: Box<dyn AppLogic>,
        rng_seed: u64,
    ) -> Self {
        let skew = config.clock_skew_us;
        AppServer {
            config,
            principal,
            service_key,
            rng: Drbg::new(rng_seed),
            replay_cache: ReplayCache::new(skew),
            pending: BTreeMap::new(),
            sessions: BTreeMap::new(),
            authorized: BTreeMap::new(),
            logic,
            auth_log: Vec::new(),
            disk: None,
            last_snapshot_us: 0,
            restarts: 0,
            trace: Tracer::new(),
            trace_now_us: 0,
        }
    }

    /// Snapshots the replay cache to "disk" when the configured interval
    /// has elapsed.
    fn maybe_snapshot(&mut self, now_us: u64) {
        if self.config.persist_replay_cache
            && now_us.saturating_sub(self.last_snapshot_us) >= self.config.replay_snapshot_interval_us
        {
            self.disk = Some(self.replay_cache.snapshot(now_us));
            self.last_snapshot_us = now_us;
        }
    }

    /// Count of accepted authentications for a given client name (attack
    /// evidence helper).
    pub fn accepted_count(&self, client: &Principal) -> usize {
        self.auth_log
            .iter()
            .filter(|e| matches!(e, AuthEvent::Accepted { client: c, .. } if c == client))
            .count()
    }

    /// The replay cache, for state-cost measurements.
    pub fn replay_cache(&self) -> &ReplayCache {
        &self.replay_cache
    }

    fn reject(&mut self, from: Endpoint, reason: &str, code: u32) -> Vec<u8> {
        // Replay-cache verdicts get their own event kinds; everything
        // else is a generic rejection with its reason.
        let kind = match code {
            err_code::REPLAY => EventKind::ReplayBlocked,
            err_code::TRY_LATER => EventKind::FailClosed,
            _ => EventKind::AuthRejected,
        };
        self.trace.emit(
            kind,
            self.trace_now_us,
            vec![
                ("site", Value::str("ap")),
                ("service", Value::str(&self.principal.name)),
                ("reason", Value::str(reason)),
                ("src", Value::str(from.addr.to_string())),
            ],
        );
        self.trace.counter("ap.rejected", &self.principal.name, 1);
        self.auth_log.push(AuthEvent::Rejected { reason: reason.into(), from });
        KrbErrorMsg { code, text: reason.into(), challenge: None }.encode(self.config.codec)
    }

    /// Validates the ticket itself (not the authenticator).
    fn check_ticket(&self, ticket: &Ticket, from: Endpoint, now_us: u64) -> Result<(), String> {
        if ticket.service != self.principal {
            return Err("ticket is for a different service".into());
        }
        if !ticket.valid_at(now_us, self.config.clock_skew_us) {
            return Err("ticket expired".into());
        }
        if self.config.forbid_duplicate_skey_auth && ticket.flags.has(TicketFlags::DUPLICATE_SKEY) {
            return Err("DUPLICATE-SKEY tickets not accepted for authentication".into());
        }
        if self.config.address_in_ticket {
            if let Some(a) = ticket.addr {
                if a != from.addr.0 {
                    return Err("ticket address mismatch".into());
                }
            }
        }
        Ok(())
    }

    /// Establishes the session and builds the AP reply.
    fn establish(
        &mut self,
        from: Endpoint,
        ticket: &Ticket,
        ts_echo: u64,
        client_subkey: Option<u64>,
        client_seq: Option<u64>,
    ) -> Vec<u8> {
        let server_subkey = self.config.subkey_negotiation.then(|| self.rng.next_u64());
        let server_seq = self.rng.next_u64() >> 16;

        let key = Session::negotiate_key(
            &ticket.session_key,
            client_subkey.unwrap_or(0),
            server_subkey.unwrap_or(0),
        );
        let session = Session::new(
            ticket.client.clone(),
            if self.config.subkey_negotiation { key } else { ticket.session_key },
            &self.config,
            Direction::ServerToClient,
            server_seq,
            client_seq.unwrap_or(0),
        );
        self.sessions.insert(from, session);
        self.authorized.insert(from, ticket.client.clone());
        self.trace.emit(
            EventKind::AuthAccepted,
            self.trace_now_us,
            vec![
                ("service", Value::str(&self.principal.name)),
                ("client", Value::str(ticket.client.to_string())),
                ("src", Value::str(from.addr.to_string())),
            ],
        );
        self.trace.counter("ap.accepted", &ticket.client.name, 1);
        self.auth_log.push(AuthEvent::Accepted { client: ticket.client.clone(), from });

        let part = EncApRepPart { ts_echo, subkey: server_subkey, seq_init: Some(server_seq) };
        let sealed = match self.config.ticket_layer.seal(
            &ticket.session_key,
            0,
            &part.encode(self.config.codec),
            &mut self.rng,
        ) {
            Ok(v) => v,
            Err(e) => return self.reject(from, &e.to_string(), err_code::GENERIC),
        };
        ApRep { enc_part: sealed }.encode(self.config.codec)
    }

    /// Handles KRB_AP_REQ.
    fn ap_exchange(&mut self, body: &[u8], from: Endpoint, now_us: u64) -> Vec<u8> {
        let req = match ApReq::decode(self.config.codec, body) {
            Ok(r) => r,
            Err(e) => return self.reject(from, &e.to_string(), err_code::GENERIC),
        };
        let ticket = match Ticket::unseal(self.config.codec, self.config.ticket_layer, &self.service_key, &req.ticket)
        {
            Ok(t) => t,
            Err(e) => return self.reject(from, &e.to_string(), err_code::GENERIC),
        };
        if let Err(why) = self.check_ticket(&ticket, from, now_us) {
            return self.reject(from, &why, err_code::POLICY);
        }

        match self.config.auth_style {
            AuthStyle::ChallengeResponse => {
                // No authenticator consulted: issue a challenge instead.
                // "As is done today, the client would present a ticket,
                // though without an authenticator."
                let nonce = self.rng.next_u64();
                self.trace.emit(
                    EventKind::ChallengeIssued,
                    self.trace_now_us,
                    vec![
                        ("service", Value::str(&self.principal.name)),
                        ("client", Value::str(ticket.client.to_string())),
                    ],
                );
                self.pending.insert(from, (nonce, ticket));
                KrbErrorMsg {
                    code: err_code::CHALLENGE_REQUIRED,
                    text: "respond to challenge".into(),
                    challenge: Some(nonce),
                }
                .encode(self.config.codec)
            }
            AuthStyle::Timestamp => {
                let auth = match Authenticator::unseal(
                    self.config.codec,
                    self.config.ticket_layer,
                    &ticket.session_key,
                    &req.authenticator,
                ) {
                    Ok(a) => a,
                    Err(e) => return self.reject(from, &e.to_string(), err_code::GENERIC),
                };
                if auth.client != ticket.client {
                    return self.reject(from, "authenticator/ticket client mismatch", err_code::GENERIC);
                }
                if auth.timestamp.abs_diff(now_us) > self.config.clock_skew_us {
                    return self.reject(from, "authenticator outside skew window", err_code::SKEW);
                }
                if self.config.address_in_ticket && auth.addr != from.addr.0 {
                    return self.reject(from, "authenticator address mismatch", err_code::GENERIC);
                }
                if self.config.service_binding
                    && auth.service_binding.as_ref() != Some(&self.principal) {
                        return self.reject(from, "authenticator not bound to this service", err_code::POLICY);
                    }
                if self.config.replay_cache {
                    match self.replay_cache.check(&req.authenticator, auth.timestamp, now_us) {
                        CacheVerdict::Replayed => {
                            return self.reject(from, "authenticator replayed", err_code::REPLAY)
                        }
                        CacheVerdict::FailClosed => {
                            // Inside the post-restart window the cache
                            // cannot prove this authenticator was never
                            // presented; refuse and let the client retry
                            // with a fresh one.
                            return self.reject(
                                from,
                                "server recently restarted; retry with a fresh authenticator",
                                err_code::TRY_LATER,
                            );
                        }
                        CacheVerdict::Fresh => {
                            // This was the last validation: record the
                            // accepted authenticator.
                            self.replay_cache.commit(&req.authenticator, now_us);
                            self.maybe_snapshot(now_us);
                        }
                    }
                }
                self.establish(from, &ticket.clone(), auth.timestamp.wrapping_add(1), auth.subkey, auth.seq_init)
            }
        }
    }

    /// Handles the client's challenge response.
    fn challenge_exchange(&mut self, body: &[u8], from: Endpoint) -> Vec<u8> {
        let Some((nonce, ticket)) = self.pending.remove(&from) else {
            return self.reject(from, "no challenge outstanding", err_code::GENERIC);
        };
        let pt = match self.config.ticket_layer.open(&ticket.session_key, 0, body) {
            Ok(p) => p,
            Err(e) => return self.reject(from, &e.to_string(), err_code::GENERIC),
        };
        let part = match EncApRepPart::decode(self.config.codec, &pt) {
            Ok(p) => p,
            Err(e) => return self.reject(from, &e.to_string(), err_code::GENERIC),
        };
        // The response must be a function of the challenge: nonce + 1.
        if part.ts_echo != nonce.wrapping_add(1) {
            return self.reject(from, "wrong challenge response", err_code::GENERIC);
        }
        self.establish(from, &ticket.clone(), nonce.wrapping_add(2), part.subkey, part.seq_init)
    }

    /// Handles a KRB_PRIV command in an established session.
    fn priv_exchange(&mut self, wire: &[u8], from: Endpoint, now_us: u64, my_addr: u32) -> Vec<u8> {
        let Some(session) = self.sessions.get_mut(&from) else {
            return self.reject(from, "no session", err_code::GENERIC);
        };
        let data = match session.recv_priv(wire, now_us) {
            Ok(d) => d,
            Err(e) => {
                let msg = e.to_string();
                return self.reject(from, &msg, err_code::INTEGRITY);
            }
        };
        let client = session.peer.clone();
        let reply = self.logic.on_command(&client, &data);
        let Some(session) = self.sessions.get_mut(&from) else {
            return self.reject(from, "no session", err_code::GENERIC);
        };
        session
            .send_priv(&reply, now_us, my_addr, &mut self.rng)
            .unwrap_or_else(|e| KrbErrorMsg { code: err_code::GENERIC, text: e.to_string(), challenge: None }
                .encode(Codec::Typed))
    }

    /// Handles a KRB_SAFE command (integrity-protected, plaintext data).
    fn safe_exchange(&mut self, wire: &[u8], from: Endpoint, now_us: u64, my_addr: u32) -> Vec<u8> {
        let config = self.config.clone();
        let Some(session) = self.sessions.get_mut(&from) else {
            return self.reject(from, "no session", err_code::GENERIC);
        };
        let data = match session.recv_safe(wire, now_us, &config) {
            Ok(d) => d,
            Err(e) => {
                let msg = e.to_string();
                return self.reject(from, &msg, err_code::INTEGRITY);
            }
        };
        let client = session.peer.clone();
        let reply = self.logic.on_command(&client, &data);
        let Some(session) = self.sessions.get_mut(&from) else {
            return self.reject(from, "no session", err_code::GENERIC);
        };
        session
            .send_safe(&reply, now_us, my_addr, &config)
            .unwrap_or_else(|e| KrbErrorMsg { code: err_code::GENERIC, text: e.to_string(), challenge: None }
                .encode(Codec::Typed))
    }

    /// Handles plain post-auth application data (the Plain deployment
    /// style): trusted purely by source endpoint.
    fn plain_exchange(&mut self, body: &[u8], from: Endpoint) -> Vec<u8> {
        if self.config.app_protection != AppProtection::Plain {
            return self.reject(from, "plain data not accepted", err_code::POLICY);
        }
        let Some(client) = self.authorized.get(&from).cloned() else {
            return self.reject(from, "endpoint not authenticated", err_code::GENERIC);
        };
        let reply = self.logic.on_command(&client, body);
        frame(WireKind::AppData, reply)
    }
}

impl Service for AppServer {
    fn handle(&mut self, ctx: &mut ServiceCtx, req: &[u8], from: Endpoint) -> Option<Vec<u8>> {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let now_us = ctx.local_time.0;
        let my_addr = ctx.host_addr.0;
        let (kind, body) = deframe(req).ok()?;
        Some(match kind {
            WireKind::ApReq => self.ap_exchange(req, from, now_us),
            WireKind::ChallengeResp => self.challenge_exchange(body, from),
            WireKind::Priv => self.priv_exchange(req, from, now_us, my_addr),
            WireKind::Safe => self.safe_exchange(req, from, now_us, my_addr),
            WireKind::AppData => self.plain_exchange(body, from),
            _ => self.reject(from, "unexpected message kind", err_code::GENERIC),
        })
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// A crash window ended: sessions, pending challenges, and plain-mode
    /// authorizations are volatile and gone. The replay cache restores
    /// from its last snapshot (fail-closing the gap) when persistence is
    /// configured; otherwise it reboots empty — the exact weakness the
    /// A1 replay-across-restart scenario exploits.
    fn on_restart(&mut self, ctx: &mut ServiceCtx) {
        self.trace = ctx.tracer.clone();
        self.trace_now_us = ctx.true_time.0;
        let boot_us = ctx.local_time.0;
        let skew = self.config.clock_skew_us;
        self.sessions.clear();
        self.pending.clear();
        self.authorized.clear();
        self.restarts += 1;
        self.replay_cache = if self.config.persist_replay_cache {
            self.disk
                .as_deref()
                .and_then(|b| ReplayCache::restore(b, boot_us))
                .unwrap_or_else(|| ReplayCache::boot_fresh(skew, boot_us))
        } else {
            ReplayCache::new(skew)
        };
    }
}

/// A client's live connection to an application server.
pub struct AppConnection {
    /// The session state.
    pub session: Session,
    /// Client endpoint.
    pub client_ep: Endpoint,
    /// Server endpoint.
    pub server_ep: Endpoint,
    /// Whether plain (unprotected) commands are in use.
    pub plain: bool,
    /// Retry policy for command datagrams (request-leg drops only).
    pub retry: RetryPolicy,
}

/// Connects to an application server: runs the AP exchange (timestamp or
/// challenge/response per config), verifies mutual authentication, and
/// returns the established connection.
pub fn connect_app(
    net: &mut Network,
    config: &ProtocolConfig,
    client_ep: Endpoint,
    server_ep: Endpoint,
    cred: &Credential,
    rng: &mut dyn RandomSource,
) -> Result<AppConnection, KrbError> {
    // Session identity (subkey half, sequence base) is drawn once: every
    // retry attempt negotiates the SAME session, only the authenticator
    // timestamp is re-stamped so the server's replay cache never sees a
    // repeat.
    let client_subkey = config.subkey_negotiation.then(|| rng.next_u64());
    let client_seq = rng.next_u64() >> 16;
    let timeout = Some(SimDuration(config.retry.timeout_us));

    // Maps a server KRB_ERROR to an attempt verdict; TRY_LATER is the
    // server's own fail-closed retry request and is transient even on a
    // perfect wire.
    let server_err = |net: &Network, code: u32, text: &str| -> retry::AttemptErr {
        if code == err_code::TRY_LATER {
            retry::AttemptErr::Transient(KrbError::FailClosed)
        } else {
            reply_transient(net, KrbError::Remote(format!("server error {code}: {text}")))
        }
    };

    let trace = net.tracer();
    let span = trace.begin_span(
        "ap-exchange",
        net.now().0,
        vec![
            ("client", Value::str(cred.client.to_string())),
            ("service", Value::str(cred.service.to_string())),
        ],
    );
    let result = retry::run(net, &config.retry, client_seq, |net, _attempt| {
        let now = client_local_time_us(net, client_ep)?;
        let (reply, expected_echo) = match config.auth_style {
            AuthStyle::Timestamp => {
                let auth = Authenticator {
                    client: cred.client.clone(),
                    addr: client_ep.addr.0,
                    timestamp: now,
                    cksum: None,
                    service_binding: config.service_binding.then(|| cred.service.clone()),
                    subkey: client_subkey,
                    seq_init: Some(client_seq),
                };
                let sealed_auth =
                    auth.seal(config.codec, config.ticket_layer, &cred.session_key, rng)?;
                let req = ApReq {
                    ticket: cred.sealed_ticket.clone(),
                    authenticator: sealed_auth,
                    mutual: true,
                };
                let reply =
                    net.rpc_with_timeout(client_ep, server_ep, req.encode(config.codec), timeout)?;
                (reply, now.wrapping_add(1))
            }
            AuthStyle::ChallengeResponse => {
                let req = ApReq {
                    ticket: cred.sealed_ticket.clone(),
                    authenticator: Vec::new(),
                    mutual: true,
                };
                let reply =
                    net.rpc_with_timeout(client_ep, server_ep, req.encode(config.codec), timeout)?;
                let (kind, _) = deframe(&reply).map_err(|e| reply_transient(net, e))?;
                if kind != WireKind::Err {
                    return Err(reply_transient(
                        net,
                        KrbError::Remote("expected a challenge".into()),
                    ));
                }
                let err = KrbErrorMsg::decode(config.codec, &reply)
                    .map_err(|e| reply_transient(net, e))?;
                if err.code != err_code::CHALLENGE_REQUIRED {
                    return Err(server_err(net, err.code, &err.text));
                }
                let nonce = err
                    .challenge
                    .ok_or_else(|| reply_transient(net, KrbError::Decode("challenge missing")))?;
                let part = EncApRepPart {
                    ts_echo: nonce.wrapping_add(1),
                    subkey: client_subkey,
                    seq_init: Some(client_seq),
                };
                let sealed =
                    config
                        .ticket_layer
                        .seal(&cred.session_key, 0, &part.encode(config.codec), rng)?;
                let reply = net.rpc_with_timeout(
                    client_ep,
                    server_ep,
                    frame(WireKind::ChallengeResp, sealed),
                    timeout,
                )?;
                (reply, nonce.wrapping_add(2))
            }
        };

        // Parse the AP reply (mutual authentication). Failures here are
        // reply-processing: genuine evidence on a perfect wire, possibly
        // the network's fault under an active fault plan.
        if let Ok((WireKind::Err, _)) = deframe(&reply) {
            let e = KrbErrorMsg::decode(config.codec, &reply).map_err(|e| reply_transient(net, e))?;
            return Err(server_err(net, e.code, &e.text));
        }
        let rep = ApRep::decode(config.codec, &reply).map_err(|e| reply_transient(net, e))?;
        let pt = config
            .ticket_layer
            .open(&cred.session_key, 0, &rep.enc_part)
            .map_err(|e| reply_transient(net, e))?;
        let part = EncApRepPart::decode(config.codec, &pt).map_err(|e| reply_transient(net, e))?;
        if part.ts_echo != expected_echo {
            return Err(reply_transient(
                net,
                KrbError::Remote("mutual authentication failed".into()),
            ));
        }

        let key = Session::negotiate_key(
            &cred.session_key,
            client_subkey.unwrap_or(0),
            part.subkey.unwrap_or(0),
        );
        let session = Session::new(
            cred.service.clone(),
            if config.subkey_negotiation { key } else { cred.session_key },
            config,
            Direction::ClientToServer,
            client_seq,
            part.seq_init.unwrap_or(0),
        );
        Ok(AppConnection {
            session,
            client_ep,
            server_ep,
            plain: config.app_protection == AppProtection::Plain,
            retry: config.retry,
        })
    });
    trace.end_span(span, net.now().0, &cred.client.name);
    result
}

/// Sends `wire` and resends the *identical bytes* when the request leg
/// was provably dropped: [`NetError::Dropped`] means the server never
/// saw the datagram, so a resend cannot double-execute a command or
/// desync strict sequence numbers. Every other failure — including the
/// ambiguous [`NetError::ReplyLost`], where the server DID execute —
/// surfaces to the application, which alone knows whether its command
/// is idempotent.
fn rpc_resend_on_drop(
    net: &mut Network,
    policy: &RetryPolicy,
    client_ep: Endpoint,
    server_ep: Endpoint,
    wire: Vec<u8>,
) -> Result<Vec<u8>, KrbError> {
    let budget = if net.faults_enabled() { policy.attempts.max(1) } else { 1 };
    let jitter = client_ep.addr.0 as u64;
    let mut sent = 0;
    loop {
        sent += 1;
        match net.rpc(client_ep, server_ep, wire.clone()) {
            Ok(reply) => return Ok(reply),
            Err(NetError::Dropped) if sent < budget => {
                net.advance(SimDuration(policy.delay_us(sent, jitter)));
                net.pump();
            }
            Err(e) => return Err(e.into()),
        }
    }
}

impl AppConnection {
    /// Sends one command as KRB_SAFE (integrity only, data in the
    /// clear) and returns the server's reply payload.
    pub fn request_safe(
        &mut self,
        net: &mut Network,
        config: &ProtocolConfig,
        data: &[u8],
    ) -> Result<Vec<u8>, KrbError> {
        let now = client_local_time_us(net, self.client_ep)?;
        let wire = self.session.send_safe(data, now, self.client_ep.addr.0, config)?;
        let reply = rpc_resend_on_drop(net, &self.retry, self.client_ep, self.server_ep, wire)?;
        if let Ok((WireKind::Err, _)) = deframe(&reply) {
            return Err(KrbError::Remote("server rejected the safe command".into()));
        }
        let now = client_local_time_us(net, self.client_ep)?;
        self.session.recv_safe(&reply, now, config)
    }

    /// Sends one command and returns the server's reply payload.
    pub fn request(
        &mut self,
        net: &mut Network,
        data: &[u8],
        rng: &mut dyn RandomSource,
    ) -> Result<Vec<u8>, KrbError> {
        let now = client_local_time_us(net, self.client_ep)?;
        if self.plain {
            let wire = frame(WireKind::AppData, data.to_vec());
            let reply = rpc_resend_on_drop(net, &self.retry, self.client_ep, self.server_ep, wire)?;
            let (kind, body) = deframe(&reply)?;
            if kind != WireKind::AppData {
                return Err(KrbError::Remote("server refused plain data".into()));
            }
            return Ok(body.to_vec());
        }
        let wire = self.session.send_priv(data, now, self.client_ep.addr.0, rng)?;
        let reply = rpc_resend_on_drop(net, &self.retry, self.client_ep, self.server_ep, wire)?;
        if let Ok((WireKind::Err, _)) = deframe(&reply) {
            // Fall back to a decode of the error for the message.
            return Err(KrbError::Remote("server rejected the command".into()));
        }
        let now = client_local_time_us(net, self.client_ep)?;
        self.session.recv_priv(&reply, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// AppLogic that echoes with a prefix.
    pub struct Echo;
    impl AppLogic for Echo {
        fn on_command(&mut self, client: &Principal, cmd: &[u8]) -> Vec<u8> {
            let mut v = format!("[{}] ", client.name).into_bytes();
            v.extend_from_slice(cmd);
            v
        }
    }

    #[test]
    fn auth_event_helpers() {
        let config = ProtocolConfig::v4();
        let key = DesKey::from_u64(1).with_odd_parity();
        let mut srv = AppServer::new(config, Principal::service("echo", "h", "R"), key, Box::new(Echo), 7);
        let from = Endpoint::new(simnet::Addr::new(1, 2, 3, 4), 9);
        srv.auth_log.push(AuthEvent::Accepted { client: Principal::user("pat", "R"), from });
        assert_eq!(srv.accepted_count(&Principal::user("pat", "R")), 1);
        assert_eq!(srv.accepted_count(&Principal::user("sam", "R")), 0);
    }
}
