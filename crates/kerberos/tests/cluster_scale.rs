//! E18 cluster-scale properties: shard routing totality, determinism
//! and balance; batched AS/TGS equivalence with the sequential
//! service path; and verdict-stable failover when a shard primary
//! crash-restarts mid-workload.

use kerberos::client::{login_at, LoginInput};
use kerberos::flags::KdcOptions;
use kerberos::messages::AsReq;
use kerberos::testbed::deploy_cluster;
use kerberos::{
    bulk_password, shard_for, shard_for_parts, Kdc, KdcDatabase, Principal, ProtocolConfig,
};
use krb_crypto::rng::{Drbg, RandomSource};
use krb_gateway::{GatewayConfig, PenaltyConfig, ShedPolicy};
use simnet::{
    Addr, Endpoint, FaultPlan, Network, Service, ServiceCtx, SimDuration, SimTime,
};
use testkit::prelude::*;

const REALM: &str = "ATHENA.MIT.EDU";

fn arb_name() -> impl Strategy<Value = String> {
    (string::of("a-z", 1..=1), string::of("a-z0-9", 0..=11)).prop_map(|(head, tail)| head + &tail)
}

fn arb_principal() -> impl Strategy<Value = Principal> {
    (arb_name(), prop_oneof![Just(String::new()), arb_name()], arb_name()).prop_map(
        |(name, instance, realm)| Principal { name, instance, realm: realm.to_uppercase() },
    )
}

testkit::prop! {
    /// Routing is total (every principal maps to a valid shard for any
    /// cluster width) and a pure function of the principal's parts.
    fn shard_routing_is_total_and_deterministic(
        p in arb_principal(),
        shards in 1usize..=16,
    ) {
        let s = shard_for(&p, shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_for(&p, shards));
        prop_assert_eq!(s, shard_for_parts(&p.name, &p.instance, &p.realm, shards));
        // Width 1 degenerates to a single shard.
        prop_assert_eq!(shard_for(&p, 1), 0);
    }

    /// Bulk-provisioned name populations spread evenly: no shard holds
    /// more than twice the mean over 10k principals, for any name
    /// prefix and any cluster width.
    fn shard_routing_balances_bulk_names [8] (
        prefix in string::of("a-z", 1..=4),
        shards in 2usize..=8,
    ) {
        const N: usize = 10_000;
        let mut occupancy = vec![0usize; shards];
        for i in 0..N {
            let p = Principal::user(&format!("{prefix}{i}"), REALM);
            occupancy[shard_for(&p, shards)] += 1;
        }
        let max = occupancy.iter().copied().max().unwrap_or(0);
        let mean = N / shards;
        prop_assert!(
            max <= 2 * mean,
            "skewed placement: occupancy {:?}, max {} > 2x mean {}",
            occupancy, max, mean
        );
    }
}

fn seeded_kdc(seed: u64) -> Kdc {
    let mut rng = Drbg::new(seed);
    let mut db = KdcDatabase::new(REALM);
    db.add_tgs(rng.gen_des_key());
    db.add_service("files", "fileshost", rng.gen_des_key());
    for i in 0..8 {
        let name = format!("u{i}");
        db.add_user(&name, &bulk_password(&name));
    }
    Kdc::new(ProtocolConfig::v5_draft3(), db, seed ^ 0xbeef)
}

/// `Kdc::handle_batch` must produce byte-identical replies to the
/// sequential per-datagram `Service::handle` path on a same-seed twin:
/// the batch is an amortization, not a semantic change.
#[test]
fn handle_batch_matches_sequential_service_path() {
    let config = ProtocolConfig::v5_draft3();
    let mut sequential = seeded_kdc(7);
    let mut batched = seeded_kdc(7);

    let mut wl = Drbg::new(99);
    let mut batch: Vec<(Vec<u8>, Endpoint)> = Vec::new();
    for i in 0..24u64 {
        // Mix known users, an unknown principal, and both request
        // kinds' framing (the TGS legs are exercised end-to-end in the
        // E18 bench; here a TGS req with a garbage ticket still must
        // produce the same error bytes on both paths).
        let name = if i % 7 == 6 { "nobody".to_string() } else { format!("u{}", i % 8) };
        let ep = Endpoint::new(Addr::new(10, 0, 0, (i % 9 + 1) as u8), 1024);
        let req = AsReq {
            client: Principal::user(&name, REALM),
            service: Principal::tgs(REALM),
            nonce: wl.next_u64(),
            lifetime_us: config.ticket_lifetime_us,
            addr: ep.addr.0,
            options: KdcOptions::empty().with(KdcOptions::FORWARDABLE),
            padata: Vec::new(),
        }
        .encode(config.codec);
        batch.push((req, ep));
    }

    let now = SimTime(3_600_000_000);
    let mut ctx_seq = ServiceCtx::detached(now, "kdc-seq", Addr::new(10, 0, 0, 250), true);
    let mut ctx_bat = ServiceCtx::detached(now, "kdc-bat", Addr::new(10, 0, 0, 251), true);

    let sequential_replies: Vec<Vec<u8>> = batch
        .iter()
        .map(|(req, ep)| sequential.handle(&mut ctx_seq, req, *ep).expect("a reply"))
        .collect();
    let batched_replies = batched.handle_batch(&mut ctx_bat, &batch);

    assert_eq!(sequential_replies.len(), batched_replies.len());
    for (i, (a, b)) in sequential_replies.iter().zip(&batched_replies).enumerate() {
        assert_eq!(a, b, "reply {i} diverged between sequential and batched paths");
    }
}

fn open_gateway() -> GatewayConfig {
    GatewayConfig {
        global_rate_per_sec: 100_000,
        global_burst: 10_000,
        per_source_rate_per_sec: 10_000,
        per_source_burst: 1_000,
        queue_bound: 512,
        queue_service_us: 100,
        shed_policy: ShedPolicy::ShedNewest,
        penalty: PenaltyConfig::standard(),
    }
}

/// Runs a seeded login workload against a small cluster, optionally
/// crash-restarting shard 0's primary mid-run, and returns the
/// per-round login verdicts.
fn login_verdicts(crash: bool) -> (Vec<bool>, u64) {
    let config = ProtocolConfig::v5_draft3();
    let mut net = Network::new();
    let cluster =
        deploy_cluster(&mut net, REALM, 1, &config, 4, 1, 16, 4, &["files"], open_gateway(), 0x51);
    if crash {
        let addr = cluster.shard_primary_eps[0].addr;
        net.set_fault_plan(
            FaultPlan::new(0x51).crash(addr, SimTime(1_500_000), SimTime(3_500_000)),
        );
    }

    let mut rng = Drbg::new(0x10617);
    let mut verdicts = Vec::new();
    net.advance(SimDuration::from_secs(1));
    for round in 0..12usize {
        let name = format!("u{}", rng.next_u64() % 16);
        let client = Principal::user(&name, REALM);
        let pw = bulk_password(&name);
        let ws = cluster.client_eps[round % cluster.client_eps.len()];
        let ok = login_at(
            &mut net,
            &config,
            ws,
            &cluster.contact_eps(),
            &client,
            LoginInput::Password(&pw),
            &mut rng,
        )
        .is_ok();
        verdicts.push(ok);
        net.advance(SimDuration::from_millis(250));
    }
    let failovers = net
        .tracer()
        .snapshot()
        .iter()
        .filter(|(k, _)| k.starts_with("gateway.shard_failovers{"))
        .map(|(_, v)| *v)
        .sum();
    (verdicts, failovers)
}

/// Crash-restarting a shard primary mid-workload must not change any
/// login verdict: the gateway's per-shard pin walks to the replica and
/// every client still authenticates.
#[test]
fn shard_primary_crash_leaves_login_verdicts_unchanged() {
    let (calm, calm_failovers) = login_verdicts(false);
    let (crashed, crash_failovers) = login_verdicts(true);

    assert_eq!(calm, crashed, "crash-restart changed a login verdict");
    assert!(calm.iter().all(|ok| *ok), "baseline run must authenticate every round");
    assert_eq!(calm_failovers, 0, "no failovers expected without a fault plan");
    assert!(crash_failovers >= 1, "the crash run must exercise gateway failover");
}
