//! Robustness: the KDC and application servers must never panic, no
//! matter what bytes arrive — the adversary owns the network, so every
//! handler is reachable with arbitrary input.

use kerberos::appserver::AppServer;
use kerberos::database::KdcDatabase;
use kerberos::kdc::Kdc;
use kerberos::messages::WireKind;
use kerberos::services::EchoLogic;
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::rng::{Drbg, RandomSource};
use simnet::{Addr, Endpoint, Service, ServiceCtx, SimTime};
use testkit::prelude::*;

fn ctx() -> ServiceCtx {
    ServiceCtx::detached(SimTime(1_000_000_000), "srv", Addr::new(10, 0, 0, 9), true)
}

fn kdc(config: &ProtocolConfig) -> Kdc {
    let mut db = KdcDatabase::new("R");
    let mut rng = Drbg::new(1);
    db.add_tgs(rng.gen_des_key());
    db.add_user("pat", "pw");
    db.add_service("files", "h", rng.gen_des_key());
    Kdc::new(config.clone(), db, 2)
}

fn app(config: &ProtocolConfig) -> AppServer {
    let mut rng = Drbg::new(3);
    AppServer::new(
        config.clone(),
        Principal::service("files", "h", "R"),
        rng.gen_des_key(),
        Box::new(EchoLogic),
        4,
    )
}

testkit::prop! {
    fn kdc_survives_arbitrary_bytes [64] (junk in collection::vec(any::<u8>(), 0..512)) {
        for config in ProtocolConfig::presets() {
            let mut k = kdc(&config);
            let from = Endpoint::new(Addr::new(10, 0, 0, 1), 1024);
            let _ = k.handle(&mut ctx(), &junk, from);
        }
    }

    /// Arbitrary bytes with a valid wire-kind prefix reach deeper code
    /// paths; still no panics.
    fn kdc_survives_kind_prefixed_junk [64] (kind in 1u8..=11, junk in collection::vec(any::<u8>(), 0..512)) {
        for config in ProtocolConfig::presets() {
            let mut k = kdc(&config);
            let from = Endpoint::new(Addr::new(10, 0, 0, 1), 1024);
            let mut payload = vec![kind];
            payload.extend_from_slice(&junk);
            let _ = k.handle(&mut ctx(), &payload, from);
        }
    }

    fn app_server_survives_arbitrary_bytes [64] (kind in 0u8..=12, junk in collection::vec(any::<u8>(), 0..512)) {
        for config in ProtocolConfig::presets() {
            let mut s = app(&config);
            let from = Endpoint::new(Addr::new(10, 0, 0, 1), 1024);
            let mut payload = vec![kind];
            payload.extend_from_slice(&junk);
            let _ = s.handle(&mut ctx(), &payload, from);
        }
    }

    /// Replies to junk, when produced, are well-formed error messages —
    /// not panics, not leaks.
    fn junk_yields_errors_not_tickets [64] (junk in collection::vec(any::<u8>(), 1..256)) {
        let config = ProtocolConfig::v5_draft3();
        let mut k = kdc(&config);
        let from = Endpoint::new(Addr::new(10, 0, 0, 1), 1024);
        let mut payload = vec![WireKind::AsReq as u8];
        payload.extend_from_slice(&junk);
        if let Some(reply) = k.handle(&mut ctx(), &payload, from) {
            // Either an error or (if the junk accidentally parsed) a
            // refusal — never a successful AS reply, since the client
            // name cannot match a registered principal by chance.
            prop_assert_eq!(reply.first(), Some(&(WireKind::Err as u8)));
        }
    }
}
