//! Fault tolerance: login/TGS/AP exchanges ride out a lossy network,
//! fail over to slave-KDC replicas, and keep replay defense sound
//! across server restarts (persistence + fail-closed window).

use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket_at, login, login_at, LoginInput, TgsParams};
use kerberos::messages::{err_code, KrbErrorMsg, WireKind};
use kerberos::testbed::{standard_campus, CLIENT_PORT};
use kerberos::{KrbError, ProtocolConfig};
use krb_crypto::rng::Drbg;
use simnet::{Addr, Endpoint, FaultPlan, LinkFaults, Network, SimDuration, SimTime};

const PASSWORD: &str = "correct-horse-battery";

fn lossy_both_ways(seed: u64, a: Addr, b: Addr, rate: f64) -> FaultPlan {
    let faults = LinkFaults {
        drop: rate,
        duplicate: rate,
        reorder: rate,
        ..LinkFaults::none()
    };
    FaultPlan::new(seed).with_link_both(a, b, faults)
}

/// Every preset authenticates end-to-end across a link that drops,
/// duplicates, and reorders at 15% each — within the standard retry
/// budget.
#[test]
fn full_flow_survives_lossy_kdc_link() {
    for config in ProtocolConfig::presets() {
        for seed in [1u64, 2, 3] {
            let mut net = Network::new();
            net.advance(SimDuration::from_secs(1_000_000));
            let realm = standard_campus(&mut net, &config, 42);
            let pat_ep = realm.user_ep("pat");
            net.set_fault_plan(lossy_both_ways(seed, pat_ep.addr, realm.kdc_ep.addr, 0.15));

            let mut rng = Drbg::new(seed ^ 0xfa01);
            let pat = realm.user("pat");
            let tgt = login_at(
                &mut net,
                &config,
                pat_ep,
                &[realm.kdc_ep],
                &pat,
                LoginInput::Password(PASSWORD),
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("login under loss (config {}, seed {seed}): {e}", config.name));

            let echo = realm.service("echo");
            let st = get_service_ticket_at(
                &mut net,
                &config,
                pat_ep,
                &[realm.kdc_ep],
                &tgt,
                &echo,
                TgsParams::default(),
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("TGS under loss (config {}, seed {seed}): {e}", config.name));

            // The app link is clean; the session works normally.
            let mut conn =
                connect_app(&mut net, &config, pat_ep, realm.service_ep("echo"), &st, &mut rng)
                    .expect("AP exchange");
            let reply = conn.request(&mut net, b"ping", &mut rng).expect("command");
            assert!(reply.ends_with(b"ping"), "config {}, seed {seed}", config.name);
        }
    }
}

/// With the master KDC inside a crash window, the client's retry loop
/// walks the KDC list and authenticates against a slave replica.
#[test]
fn login_fails_over_to_replica_while_master_down() {
    for config in ProtocolConfig::presets() {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let mut realm = standard_campus(&mut net, &config, 42);
        realm.add_kdc_replicas(&mut net, 2, 42);

        // Master dark for an hour starting now; links otherwise clean.
        let t0 = net.now();
        net.set_fault_plan(FaultPlan::new(9).crash(
            realm.kdc_ep.addr,
            t0,
            SimTime(t0.0 + 3_600_000_000),
        ));

        let mut rng = Drbg::new(0xfa02);
        let pat = realm.user("pat");
        let tgt = login_at(
            &mut net,
            &config,
            realm.user_ep("pat"),
            &realm.kdc_eps(),
            &pat,
            LoginInput::Password(PASSWORD),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("failover login (config {}): {e}", config.name));
        assert_eq!(tgt.client, pat);

        // A replica-issued TGT is a first-class credential: the TGS
        // exchange (also against the replica list) and the app session
        // both accept it.
        let echo = realm.service("echo");
        let st = get_service_ticket_at(
            &mut net,
            &config,
            realm.user_ep("pat"),
            &realm.kdc_eps(),
            &tgt,
            &echo,
            TgsParams::default(),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("failover TGS (config {}): {e}", config.name));
        let mut conn = connect_app(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.service_ep("echo"),
            &st,
            &mut rng,
        )
        .expect("AP exchange");
        let reply = conn.request(&mut net, b"via-replica", &mut rng).expect("command");
        assert!(reply.ends_with(b"via-replica"), "config {}", config.name);
    }
}

/// Without replicas, a crashed master exhausts the retry budget and the
/// failure says so (liveness bound is explicit, not a hang).
#[test]
fn crashed_master_without_replicas_exhausts_retries() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 42);
    let t0 = net.now();
    net.set_fault_plan(FaultPlan::new(9).crash(
        realm.kdc_ep.addr,
        t0,
        SimTime(t0.0 + 3_600_000_000),
    ));

    let mut rng = Drbg::new(0xfa03);
    let pat = realm.user("pat");
    let err = login_at(
        &mut net,
        &config,
        realm.user_ep("pat"),
        &[realm.kdc_ep],
        &pat,
        LoginInput::Password(PASSWORD),
        &mut rng,
    )
    .expect_err("master is down");
    match err {
        KrbError::RetriesExhausted { attempts, .. } => {
            assert_eq!(attempts, config.retry.attempts)
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

/// Captures the wire bytes of the last AS request pat sent to the KDC.
fn last_as_req_to_kdc(net: &Network, kdc_ep: Endpoint) -> Vec<u8> {
    net.traffic_log()
        .iter()
        .rev()
        .find(|r| {
            r.is_request
                && r.dgram.dst == kdc_ep
                && r.dgram.payload.first() == Some(&(WireKind::AsReq as u8))
        })
        .expect("an AS request was logged")
        .dgram
        .payload
        .to_vec()
}

/// Hardened KDCs snapshot their preauth replay cache to stable storage;
/// replaying a captured AS request across a KDC crash/restart is still
/// caught. With persistence disabled the same replay sails through —
/// the V4-era fail-open reality.
///
/// Handheld-authenticator login is switched off here: its per-login
/// challenge binding kills replays before the cache is even consulted,
/// which would mask exactly the mechanism under test. Plain
/// `{timestamp}K_c` preauthentication leans on the cache alone.
#[test]
fn preauth_replay_across_kdc_restart() {
    for (persist, expect_caught) in [(true, true), (false, false)] {
        let mut config = ProtocolConfig::hardened();
        config.hha_login = false;
        config.persist_replay_cache = persist;
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 42);

        // Honest login: commits (and, when persisting, snapshots) the
        // preauth blob.
        let mut rng = Drbg::new(0xfa04);
        let pat = realm.user("pat");
        login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &pat,
            LoginInput::Password(PASSWORD),
            &mut rng,
        )
        .expect("honest login");
        let stolen = last_as_req_to_kdc(&net, realm.kdc_ep);

        // The KDC crashes and restarts, well inside the clock-skew
        // window of the stolen request.
        let t = net.now();
        net.set_fault_plan(FaultPlan::new(5).crash(
            realm.kdc_ep.addr,
            SimTime(t.0 + 1_000_000),
            SimTime(t.0 + 2_000_000),
        ));
        net.advance(SimDuration::from_secs(3));

        // The adversary replays the captured request from their own
        // workstation.
        let zach_ep = Endpoint::new(realm.user_ep("zach").addr, CLIENT_PORT + 1);
        let reply = net.rpc(zach_ep, realm.kdc_ep, stolen).expect("KDC replies");
        let is_err = reply.first() == Some(&(WireKind::Err as u8));
        if expect_caught {
            let e = KrbErrorMsg::decode(config.codec, &reply).expect("error decodes");
            assert_eq!(
                e.code,
                err_code::REPLAY,
                "persisted cache must recognize the replay"
            );
        } else {
            assert!(
                !is_err,
                "volatile cache forgot the blob: replay is accepted after restart"
            );
        }

        // Either way the KDC restarted exactly once.
        let restarts = realm.with_kdc(&mut net, |k| k.restarts);
        assert_eq!(restarts, 1);
    }
}

/// An authenticator stamped inside the snapshot→crash gap cannot be
/// proven fresh after restart: the KDC fail-closes (TRY_LATER) rather
/// than guessing, and an honest retry with a fresh stamp succeeds.
#[test]
fn fail_closed_window_refuses_unprovable_stamps_but_fresh_ones_pass() {
    let mut config = ProtocolConfig::hardened();
    config.hha_login = false; // cache semantics, not challenge binding
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 42);
    let mut rng = Drbg::new(0xfa05);
    let pat = realm.user("pat");

    // First login: commit + snapshot (the snapshot interval has long
    // elapsed at epoch time).
    login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &pat,
        LoginInput::Password(PASSWORD),
        &mut rng,
    )
    .expect("first login");

    // Second login shortly after: committed in memory only (the
    // snapshot interval hasn't elapsed), so its blob is invisible to
    // the post-restart cache.
    net.advance(SimDuration::from_secs(1));
    let mut rng2 = Drbg::new(0xfa06);
    login(
        &mut net,
        &config,
        realm.user_ep("sam"),
        realm.kdc_ep,
        &realm.user("sam"),
        LoginInput::Password("wombat7"),
        &mut rng2,
    )
    .expect("second login");
    let unprovable = last_as_req_to_kdc(&net, realm.kdc_ep);

    // Crash/restart.
    let t = net.now();
    net.set_fault_plan(FaultPlan::new(5).crash(
        realm.kdc_ep.addr,
        SimTime(t.0 + 1_000_000),
        SimTime(t.0 + 2_000_000),
    ));
    net.advance(SimDuration::from_secs(3));

    // Replaying the unprovable request: the stamp falls inside the
    // fail-closed gap, and the KDC refuses rather than risk a replay.
    let zach_ep = Endpoint::new(realm.user_ep("zach").addr, CLIENT_PORT + 1);
    let reply = net.rpc(zach_ep, realm.kdc_ep, unprovable).expect("KDC replies");
    let e = KrbErrorMsg::decode(config.codec, &reply).expect("an error reply");
    assert_eq!(e.code, err_code::TRY_LATER, "gap stamps are refused, not guessed about");

    // An honest client minting a FRESH authenticator (stamped after
    // boot) is unaffected: fail-closed costs one retry, not liveness.
    let mut rng3 = Drbg::new(0xfa07);
    login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &pat,
        LoginInput::Password(PASSWORD),
        &mut rng3,
    )
    .expect("fresh login after restart");
}

/// Installing a zero-rate fault plan changes nothing: the traffic log of
/// a full flow is byte-for-byte identical to a run with no plan at all.
#[test]
fn zero_fault_plan_is_byte_identical_end_to_end() {
    fn run(with_plan: bool) -> Vec<(u64, Vec<u8>, bool)> {
        let config = ProtocolConfig::hardened();
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 42);
        if with_plan {
            net.set_fault_plan(FaultPlan::new(7));
        }
        let mut rng = Drbg::new(0xfa08);
        let pat = realm.user("pat");
        let tgt = login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &pat,
            LoginInput::Password(PASSWORD),
            &mut rng,
        )
        .expect("login");
        let echo = realm.service("echo");
        let st = get_service_ticket_at(
            &mut net,
            &config,
            realm.user_ep("pat"),
            &[realm.kdc_ep],
            &tgt,
            &echo,
            TgsParams::default(),
            &mut rng,
        )
        .expect("TGS");
        let mut conn =
            connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
                .expect("AP");
        conn.request(&mut net, b"determinism", &mut rng).expect("command");
        net.traffic_log()
            .iter()
            .map(|r| (r.at.0, r.dgram.payload.to_vec(), r.is_request))
            .collect()
    }

    assert_eq!(run(false), run(true), "zero-fault plan must be a perfect wire");
}
