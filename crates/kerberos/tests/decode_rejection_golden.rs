//! Decode-rejection goldens: a directory of malformed frames, each
//! pinned byte-for-byte together with the exact typed error its decoder
//! must report. Any drift in either the bytes or the diagnostic is a
//! test failure.
//!
//! Regenerate after an intentional codec change with:
//!
//! ```text
//! KRB_GOLDEN_BLESS=1 cargo test -p kerberos --test decode_rejection_golden
//! ```

use kerberos::authenticator::Authenticator;
use kerberos::encoding::Codec;
use kerberos::flags::{KdcOptions, TicketFlags};
use kerberos::messages::{AsReq, PaData};
use kerberos::principal::Principal;
use kerberos::ticket::Ticket;
use krb_crypto::des::DesKey;
use std::fs;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/rejects")
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::new();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            s.push('\n');
        }
        s.push_str(&format!("{b:02x}"));
    }
    s.push('\n');
    s
}

fn from_hex(s: &str) -> Vec<u8> {
    let digits: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    assert!(digits.len().is_multiple_of(2), "odd hex");
    let nib = |b: u8| match b {
        b'0'..=b'9' => b - b'0',
        b'a'..=b'f' => b - b'a' + 10,
        _ => panic!("bad hex digit {:?}", b as char),
    };
    digits.chunks(2).map(|p| nib(p[0]) << 4 | nib(p[1])).collect()
}

/// One malformed frame plus the decoder it is fed to.
struct Case {
    name: &'static str,
    bytes: Vec<u8>,
    error: String,
}

/// Builds every case deterministically from canonical encodings with a
/// surgical corruption each — so the fixtures regenerate identically.
fn cases() -> Vec<Case> {
    let client = Principal::user("pat", "ATHENA.MIT.EDU");
    let req = AsReq {
        service: Principal::tgs("ATHENA.MIT.EDU"),
        client: client.clone(),
        nonce: 0xfeed_f00d,
        lifetime_us: 28_800_000_000,
        addr: 0x0a00_0001,
        options: KdcOptions(0),
        padata: vec![PaData::EncTimestamp(vec![7; 8])],
    };
    let ticket = Ticket {
        flags: TicketFlags::empty().with(TicketFlags::INITIAL),
        client: client.clone(),
        service: Principal::service("files", "fileserver", "ATHENA.MIT.EDU"),
        addr: Some(0x0a00_0001),
        auth_time: 1_000_000,
        start_time: 1_000_000,
        end_time: 301_000_000,
        session_key: DesKey::from_u64(0x1122_3344_5566_7788),
        transited: vec![],
    };

    let mut out = Vec::new();
    let mut push = |name: &'static str, bytes: Vec<u8>, codec: Codec, is_auth: bool| {
        let error = if is_auth {
            Authenticator::decode(codec, &bytes).unwrap_err().to_string()
        } else {
            AsReq::decode(codec, &bytes).unwrap_err().to_string()
        };
        out.push(Case { name, bytes, error });
    };

    // Wire envelope corruptions: frame is [kind][magic][version][tag][len u32][body].
    let wire = req.encode(Codec::Wire);
    let mut b = wire.clone();
    b[1] = 0x00;
    push("wire--as-req--bad-magic", b, Codec::Wire, false);
    let mut b = wire.clone();
    b[2] = 0x04;
    push("wire--as-req--bad-version", b, Codec::Wire, false);
    let mut b = wire.clone();
    b[3] = 0x7f;
    push("wire--as-req--unknown-msg-type", b, Codec::Wire, false);
    let mut b = wire.clone();
    b[4..8].copy_from_slice(&0xffff_ffffu32.to_be_bytes());
    push("wire--as-req--overlong-length", b, Codec::Wire, false);
    let mut b = wire.clone();
    b.truncate(6);
    push("wire--as-req--truncated-header", b, Codec::Wire, false);
    // A ticket fed to the authenticator decoder: known tag, wrong type.
    push(
        "wire--authenticator--cross-type-ticket",
        ticket.encode(Codec::Wire),
        Codec::Wire,
        true,
    );
    // Truncated mid-padata: cut the last 4 bytes of the body (inside the
    // pa-data blob), keeping the envelope length honest.
    let mut b = wire.clone();
    let cut = b.len() - 4;
    b.truncate(cut);
    let body_len = (b.len() - 8) as u32;
    b[4..8].copy_from_slice(&body_len.to_be_bytes());
    push("wire--as-req--truncated-padata", b, Codec::Wire, false);

    // Typed envelope corruption.
    let typed = req.encode(Codec::Typed);
    let mut b = typed.clone();
    b[1] = 0x00;
    push("typed--as-req--bad-magic", b, Codec::Typed, false);

    // Legacy has no envelope; truncation lands in a field.
    let legacy = req.encode(Codec::Legacy);
    let mut b = legacy;
    b.truncate(4);
    push("legacy--as-req--truncated-client", b, Codec::Legacy, false);

    out
}

#[test]
fn malformed_frames_map_to_pinned_typed_errors() {
    let dir = fixture_dir();
    let cases = cases();
    if std::env::var_os("KRB_GOLDEN_BLESS").is_some() {
        fs::create_dir_all(&dir).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            fs::remove_file(entry.unwrap().path()).unwrap();
        }
        for c in &cases {
            fs::write(dir.join(format!("{}.hex", c.name)), to_hex(&c.bytes)).unwrap();
            fs::write(dir.join(format!("{}.txt", c.name)), format!("{}\n", c.error)).unwrap();
        }
        return;
    }
    let mut seen = 0;
    for c in &cases {
        let hex = fs::read_to_string(dir.join(format!("{}.hex", c.name)))
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", c.name));
        assert_eq!(from_hex(&hex), c.bytes, "frame bytes drifted for {}", c.name);
        let golden = fs::read_to_string(dir.join(format!("{}.txt", c.name))).unwrap();
        assert_eq!(golden.trim_end(), c.error, "diagnostic drifted for {}", c.name);
        seen += 1;
    }
    // No stale fixture files either.
    let on_disk = fs::read_dir(&dir).unwrap().count();
    assert_eq!(on_disk, seen * 2, "stale files in {}", dir.display());
}

/// The diagnostics themselves are meaningful: each names the failing
/// layer (envelope field or message field) and a position.
#[test]
fn rejection_diagnostics_name_field_and_position() {
    let by_name: std::collections::BTreeMap<&str, String> =
        cases().into_iter().map(|c| (c.name, c.error)).collect();
    assert_eq!(by_name["wire--as-req--bad-magic"], "bad wire envelope: magic at byte 0 (found 0x00)");
    assert_eq!(
        by_name["wire--as-req--bad-version"],
        "bad wire envelope: version at byte 1 (found 0x04)"
    );
    assert_eq!(
        by_name["wire--as-req--unknown-msg-type"],
        "bad wire envelope: msg-type at byte 2 (found 0x7f)"
    );
    assert_eq!(by_name["wire--as-req--overlong-length"], "bad wire envelope: length at byte 3");
    assert!(by_name["wire--authenticator--cross-type-ticket"].contains("wrong message type"));
    assert!(
        by_name["wire--as-req--truncated-padata"].contains("in field 'padata'"),
        "{}",
        by_name["wire--as-req--truncated-padata"]
    );
    assert!(
        by_name["legacy--as-req--truncated-client"].contains("in field 'client'"),
        "{}",
        by_name["legacy--as-req--truncated-client"]
    );
}
