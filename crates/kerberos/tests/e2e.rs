//! End-to-end protocol flows: login -> TGS -> application session, for
//! every preset configuration.

use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos::testbed::{standard_campus, CLIENT_PORT};
use kerberos::{KrbError, ProtocolConfig};
use krb_crypto::rng::Drbg;
use simnet::{Endpoint, Network, SimDuration};

fn full_flow(config: ProtocolConfig) {
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000)); // A nonzero epoch.
    let realm = standard_campus(&mut net, &config, 42);
    let mut rng = Drbg::new(7);

    // Login as pat.
    let pat = realm.user("pat");
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &pat,
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .expect("login succeeds");
    assert_eq!(tgt.client, pat);
    assert!(tgt.end_time > net.now().0);

    // Service ticket for the echo service.
    let echo = realm.service("echo");
    let st = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &echo,
        TgsParams::default(),
        &mut rng,
    )
    .expect("TGS exchange succeeds");
    assert_eq!(st.service, echo);
    assert_ne!(st.session_key, tgt.session_key);

    // Application session with mutual authentication.
    let mut conn = connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
        .expect("AP exchange succeeds");
    let reply = conn.request(&mut net, b"hello kerberos", &mut rng).expect("command succeeds");
    assert_eq!(reply, b"[pat@ATHENA.MIT.EDU] hello kerberos", "config {}", config.name);

    // Several more commands flow on the same session.
    for i in 0..5 {
        let msg = format!("msg {i}");
        let reply = conn.request(&mut net, msg.as_bytes(), &mut rng).unwrap();
        assert!(reply.ends_with(msg.as_bytes()));
    }

    // The server logged exactly one accepted authentication for pat.
    let accepted = realm.with_app_server(&mut net, "echo", |s| s.accepted_count(&pat));
    assert_eq!(accepted, 1);
}

#[test]
fn v4_full_flow() {
    full_flow(ProtocolConfig::v4());
}

#[test]
fn v5_draft3_full_flow() {
    full_flow(ProtocolConfig::v5_draft3());
}

#[test]
fn hardened_full_flow() {
    full_flow(ProtocolConfig::hardened());
}

#[test]
fn wrong_password_fails() {
    for config in ProtocolConfig::presets() {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 43);
        let mut rng = Drbg::new(8);
        let result = login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &realm.user("pat"),
            LoginInput::Password("wrong-password"),
            &mut rng,
        );
        assert!(result.is_err(), "config {}", config.name);
    }
}

#[test]
fn unknown_user_rejected() {
    let config = ProtocolConfig::v4();
    let mut net = Network::new();
    let realm = standard_campus(&mut net, &config, 44);
    let mut rng = Drbg::new(9);
    let err = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &kerberos::Principal::user("mallory", &realm.name),
        LoginInput::Password("x"),
        &mut rng,
    )
    .unwrap_err();
    assert!(matches!(err, KrbError::Remote(_)));
}

#[test]
fn expired_tgt_rejected_by_tgs() {
    let config = ProtocolConfig::v4();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 45);
    let mut rng = Drbg::new(10);
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();
    // Jump past the ticket lifetime plus skew.
    net.advance(SimDuration::from_secs(9 * 3600));
    let err = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &realm.service("echo"),
        TgsParams::default(),
        &mut rng,
    )
    .unwrap_err();
    assert!(matches!(err, KrbError::Remote(_)));
}

#[test]
fn ticket_for_one_service_rejected_by_another() {
    for config in ProtocolConfig::presets() {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 46);
        let mut rng = Drbg::new(11);
        let tgt = login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &realm.user("pat"),
            LoginInput::Password("correct-horse-battery"),
            &mut rng,
        )
        .unwrap();
        let st_echo = get_service_ticket(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &tgt,
            &realm.service("echo"),
            TgsParams::default(),
            &mut rng,
        )
        .unwrap();
        // Present the echo ticket to the files server.
        let err = connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("files"), &st_echo, &mut rng);
        assert!(err.is_err(), "config {}", config.name);
    }
}

#[test]
fn hha_login_works_and_mismatched_device_fails() {
    // Handheld-authenticator deployment: the AS reply is sealed under
    // {R}K_c; the device computes the key from the challenge.
    let mut config = ProtocolConfig::v4();
    config.hha_login = true;
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 47);
    let mut rng = Drbg::new(12);

    // Device path: compute {R}K_c from the enrolled key.
    let kc = krb_crypto::s2k::string_to_key_v5("correct-horse-battery", &realm.user("pat").salt());
    let device = move |r: u64| kerberos::kdc::hha_key(&kc, r);
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Handheld(&device),
        &mut rng,
    )
    .expect("HHA login succeeds");
    assert_eq!(tgt.client, realm.user("pat"));

    // A device enrolled with the wrong key cannot decrypt the reply.
    let bad_kc = krb_crypto::s2k::string_to_key_v5("not-the-password", &realm.user("pat").salt());
    let bad_device = move |r: u64| kerberos::kdc::hha_key(&bad_kc, r);
    assert!(login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Handheld(&bad_device),
        &mut rng,
    )
    .is_err());
}

#[test]
fn two_users_interleaved_sessions() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 48);
    let mut rng = Drbg::new(13);

    let mut conns = Vec::new();
    for (user, pw) in [("pat", "correct-horse-battery"), ("sam", "wombat7")] {
        let tgt = login(
            &mut net,
            &config,
            realm.user_ep(user),
            realm.kdc_ep,
            &realm.user(user),
            LoginInput::Password(pw),
            &mut rng,
        )
        .unwrap();
        let st = get_service_ticket(
            &mut net,
            &config,
            realm.user_ep(user),
            realm.kdc_ep,
            &tgt,
            &realm.service("files"),
            TgsParams::default(),
            &mut rng,
        )
        .unwrap();
        let conn =
            connect_app(&mut net, &config, realm.user_ep(user), realm.service_ep("files"), &st, &mut rng).unwrap();
        conns.push((user.to_string(), conn));
    }

    // Interleave file operations; each user sees only their namespace.
    for (user, conn) in &mut conns {
        let cmd = format!("PUT note.txt property of {user}");
        assert_eq!(conn.request(&mut net, cmd.as_bytes(), &mut rng).unwrap(), b"OK");
    }
    for (user, conn) in &mut conns {
        let got = conn.request(&mut net, b"GET note.txt", &mut rng).unwrap();
        assert_eq!(got, format!("property of {user}").into_bytes());
    }
}

#[test]
fn rate_limit_throttles_as_requests() {
    let mut config = ProtocolConfig::v4();
    config.kdc_rate_limit = Some(5);
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 49);
    let mut rng = Drbg::new(14);

    let mut failures = 0;
    for _ in 0..10 {
        let r = login(
            &mut net,
            &config,
            realm.user_ep("zach"),
            realm.kdc_ep,
            &realm.user("zach"),
            LoginInput::Password("attacker-owned"),
            &mut rng,
        );
        if r.is_err() {
            failures += 1;
        }
    }
    assert!(failures >= 5, "rate limit should have triggered, failures={failures}");

    // A different source address is unaffected.
    let ok = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    );
    assert!(ok.is_ok());
}

#[test]
fn krb_safe_messages_flow() {
    // Exercise KRB_SAFE via session objects driven over the network
    // manually (integrity-only messaging).
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 50);
    let mut rng = Drbg::new(15);
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();
    let st = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &realm.service("echo"),
        TgsParams::default(),
        &mut rng,
    )
    .unwrap();
    let conn = connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng).unwrap();
    // Drive the safe path directly against the session machinery.
    let mut client_session = conn.session;
    let wire = client_session.send_safe(b"integrity only", 123, 7, &config).unwrap();
    assert!(wire.len() > b"integrity only".len());
    let _ = Endpoint::new(simnet::Addr::new(0, 0, 0, 0), CLIENT_PORT);
}
