//! Property-based tests over the protocol data structures: arbitrary
//! field values must round-trip through all three codecs and every
//! encryption layer, and the typed codecs must always reject cross-type
//! reads.
//!
//! Runs on `testkit::prop`; replay failures with the printed seed.

use kerberos::authenticator::Authenticator;
use kerberos::encoding::{Codec, MsgType};
use kerberos::enclayer::EncLayer;
use kerberos::flags::{KdcOptions, TicketFlags};
use kerberos::messages::{
    ApRep, ApReq, AsRep, AsReq, EncApRepPart, EncKdcRepPart, KrbErrorMsg, PaData, TgsRep, TgsReq,
};
use kerberos::principal::Principal;
use kerberos::session::{decode_priv_draft3, encode_priv_draft3, Direction, PrivPart};
use kerberos::ticket::Ticket;
use krb_crypto::des::DesKey;
use krb_crypto::rng::Drbg;
use testkit::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    (string::of("a-z", 1..=1), string::of("a-z0-9", 0..=11)).prop_map(|(head, tail)| head + &tail)
}

fn arb_principal() -> impl Strategy<Value = Principal> {
    (arb_name(), prop_oneof![Just(String::new()), arb_name()], arb_name()).prop_map(
        |(name, instance, realm)| Principal { name, instance, realm: realm.to_uppercase() },
    )
}

fn arb_ticket() -> impl Strategy<Value = Ticket> {
    (
        any::<u16>(),
        arb_principal(),
        arb_principal(),
        any::<Option<u32>>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        collection::vec(arb_name(), 0..4),
    )
        .prop_map(|(flags, client, service, addr, auth, start, end, skey, transited)| Ticket {
            flags: TicketFlags(flags),
            client,
            service,
            addr,
            auth_time: auth,
            start_time: start,
            end_time: end,
            session_key: DesKey::from_u64(skey),
            transited,
        })
}

fn arb_authenticator() -> impl Strategy<Value = Authenticator> {
    (
        arb_principal(),
        any::<u32>(),
        any::<u64>(),
        option::of(arb_principal()),
        any::<Option<u64>>(),
        any::<Option<u64>>(),
    )
        .prop_map(|(client, addr, timestamp, binding, subkey, seq)| Authenticator {
            client,
            addr,
            timestamp,
            cksum: None,
            service_binding: binding,
            subkey,
            seq_init: seq,
        })
}

fn codecs() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Legacy), Just(Codec::Typed), Just(Codec::Wire)]
}

fn layers() -> impl Strategy<Value = EncLayer> {
    prop_oneof![
        Just(EncLayer::V4Pcbc),
        Just(EncLayer::V5Cbc { confounder: false }),
        Just(EncLayer::V5Cbc { confounder: true }),
        Just(EncLayer::HardenedCbc),
    ]
}

testkit::prop! {
    fn ticket_roundtrip(t in arb_ticket(), codec in codecs()) {
        let bytes = t.encode(codec);
        prop_assert_eq!(Ticket::decode(codec, &bytes).unwrap(), t);
    }

    fn ticket_seal_roundtrip(t in arb_ticket(), codec in codecs(), layer in layers(), k in any::<u64>()) {
        let key = DesKey::from_u64(k).with_odd_parity();
        let mut rng = Drbg::new(1);
        let sealed = t.seal(codec, layer, &key, &mut rng).unwrap();
        prop_assert_eq!(Ticket::unseal(codec, layer, &key, &sealed).unwrap(), t);
    }

    fn authenticator_roundtrip(a in arb_authenticator(), codec in codecs()) {
        let bytes = a.encode(codec);
        prop_assert_eq!(Authenticator::decode(codec, &bytes).unwrap(), a);
    }

    /// Under the tagged codecs NO ticket may ever read as an
    /// authenticator — the property the paper says "the most simple
    /// analysis" should verify.
    fn typed_codec_never_confuses_types(t in arb_ticket(), codec in prop_oneof![Just(Codec::Typed), Just(Codec::Wire)]) {
        let bytes = t.encode(codec);
        prop_assert!(Authenticator::decode(codec, &bytes).is_err());
        let a = Authenticator::basic(t.client.clone(), 1, 2);
        let bytes = a.encode(codec);
        prop_assert!(Ticket::decode(codec, &bytes).is_err());
    }

    fn as_req_roundtrip(
        client in arb_principal(),
        nonce in any::<u64>(),
        lifetime in any::<u64>(),
        addr in any::<u32>(),
        options in any::<u16>(),
        pa_blob in collection::vec(any::<u8>(), 0..32),
        codec in codecs(),
    ) {
        let m = AsReq {
            service: Principal::tgs(&client.realm),
            client,
            nonce,
            lifetime_us: lifetime,
            addr,
            options: KdcOptions(options),
            padata: vec![PaData::EncTimestamp(pa_blob.clone()), PaData::DhPublic(pa_blob)],
        };
        prop_assert_eq!(AsReq::decode(codec, &m.encode(codec)).unwrap(), m);
    }

    fn as_rep_roundtrip(
        challenge in any::<Option<u64>>(),
        dh in option::of(collection::vec(any::<u8>(), 0..96)),
        enc in collection::vec(any::<u8>(), 0..64),
        codec in codecs(),
    ) {
        let m = AsRep { challenge_r: challenge, dh_public: dh, enc_part: enc };
        prop_assert_eq!(AsRep::decode(codec, &m.encode(codec)).unwrap(), m);
    }

    fn tgs_req_roundtrip(
        service in arb_principal(),
        options in any::<u16>(),
        nonce in any::<u64>(),
        lifetime in any::<u64>(),
        add in option::of(collection::vec(any::<u8>(), 0..48)),
        fwd in any::<Option<u64>>(),
        authz in collection::vec(any::<u8>(), 0..32),
        tgt in collection::vec(any::<u8>(), 0..48),
        auth in collection::vec(any::<u8>(), 0..48),
        codec in codecs(),
    ) {
        let m = TgsReq {
            tgt,
            authenticator: auth,
            service,
            options: KdcOptions(options),
            nonce,
            lifetime_us: lifetime,
            additional_ticket: add,
            forward_addr: fwd,
            authz_data: authz,
        };
        prop_assert_eq!(TgsReq::decode(codec, &m.encode(codec)).unwrap(), m.clone());
        // The checksum body must be sensitive to every protected field.
        let mut m2 = m.clone();
        m2.nonce = m.nonce.wrapping_add(1);
        prop_assert_ne!(m.checksum_body(), m2.checksum_body());
    }

    fn kdc_rep_part_roundtrip(
        skey in any::<u64>(),
        nonce in any::<u64>(),
        ticket in collection::vec(any::<u8>(), 0..64),
        end in any::<u64>(),
        st in any::<u64>(),
        codec in codecs(),
    ) {
        let p = EncKdcRepPart {
            session_key: DesKey::from_u64(skey),
            nonce,
            ticket,
            end_time: end,
            server_time: st,
            ticket_cksum: None,
        };
        let enc = p.encode(codec, MsgType::EncTgsRepPart);
        prop_assert_eq!(EncKdcRepPart::decode(codec, MsgType::EncTgsRepPart, &enc).unwrap(), p);
    }

    fn rep_envelopes_roundtrip(
        enc_part in collection::vec(any::<u8>(), 0..96),
        codec in codecs(),
    ) {
        let t = TgsRep { enc_part: enc_part.clone() };
        prop_assert_eq!(TgsRep::decode(codec, &t.encode(codec)).unwrap(), t);
        let a = ApRep { enc_part };
        prop_assert_eq!(ApRep::decode(codec, &a.encode(codec)).unwrap(), a);
    }

    /// The wire codec's extensible pa-data list carries unknown tags
    /// (>= 3) opaquely through a round-trip.
    fn wire_unknown_padata_roundtrip(
        tag in 3u8..=255,
        blob in collection::vec(any::<u8>(), 0..32),
        client in arb_principal(),
        nonce in any::<u64>(),
    ) {
        let m = AsReq {
            service: Principal::tgs(&client.realm),
            client,
            nonce,
            lifetime_us: 1,
            addr: 2,
            options: KdcOptions(0),
            padata: vec![PaData::EncTimestamp(vec![9]), PaData::Unknown(tag, blob)],
        };
        prop_assert_eq!(AsReq::decode(Codec::Wire, &m.encode(Codec::Wire)).unwrap(), m.clone());
        // The older codecs are not extensible: the same message is a
        // typed reject, never a silent re-interpretation.
        prop_assert!(AsReq::decode(Codec::Legacy, &m.encode(Codec::Legacy)).is_err());
        prop_assert!(AsReq::decode(Codec::Typed, &m.encode(Codec::Typed)).is_err());
    }

    fn ap_messages_roundtrip(
        ticket in collection::vec(any::<u8>(), 0..64),
        auth in collection::vec(any::<u8>(), 0..64),
        mutual in any::<bool>(),
        echo in any::<u64>(),
        subkey in any::<Option<u64>>(),
        seq in any::<Option<u64>>(),
        codec in codecs(),
    ) {
        let q = ApReq { ticket, authenticator: auth, mutual };
        prop_assert_eq!(ApReq::decode(codec, &q.encode(codec)).unwrap(), q);
        let p = EncApRepPart { ts_echo: echo, subkey, seq_init: seq };
        prop_assert_eq!(EncApRepPart::decode(codec, &p.encode(codec)).unwrap(), p);
    }

    fn error_roundtrip(code in any::<u32>(), text in string::printable(0..=40), challenge in any::<Option<u64>>(), codec in codecs()) {
        let e = KrbErrorMsg { code, text, challenge };
        prop_assert_eq!(KrbErrorMsg::decode(codec, &e.encode(codec)).unwrap(), e);
    }

    fn priv_part_draft3_roundtrip(
        data in collection::vec(any::<u8>(), 0..128),
        ts in any::<u64>(),
        dir in prop_oneof![Just(Direction::ClientToServer), Just(Direction::ServerToClient)],
        addr in any::<u32>(),
    ) {
        let p = PrivPart { data, ts_or_seq: ts, direction: dir, addr };
        let enc = encode_priv_draft3(&p);
        prop_assert_eq!(enc.len() % 8, 0);
        prop_assert_eq!(decode_priv_draft3(&enc).unwrap(), p);
    }

    /// Decoding arbitrary junk never panics, only errors.
    fn decoders_never_panic(junk in collection::vec(any::<u8>(), 0..256), codec in codecs()) {
        let _ = Ticket::decode(codec, &junk);
        let _ = Authenticator::decode(codec, &junk);
        let _ = AsReq::decode(codec, &junk);
        let _ = AsRep::decode(codec, &junk);
        let _ = TgsReq::decode(codec, &junk);
        let _ = ApReq::decode(codec, &junk);
        let _ = KrbErrorMsg::decode(codec, &junk);
        let _ = decode_priv_draft3(&junk);
    }

    /// Opening arbitrary junk through any encryption layer never
    /// panics; the hardened layer always rejects it.
    fn enc_layers_never_panic_on_junk(junk in collection::vec(any::<u8>(), 0..256), layer in layers(), k in any::<u64>()) {
        let key = DesKey::from_u64(k).with_odd_parity();
        let r = layer.open(&key, 0, &junk);
        if layer == EncLayer::HardenedCbc {
            prop_assert!(r.is_err());
        }
    }
}
