//! Negative-path coverage of the KDC and application servers: every
//! tampered, mismatched, or stale artifact must be rejected with a
//! protocol error, never accepted and never a panic.

use kerberos::appserver::connect_app;
use kerberos::authenticator::Authenticator;
use kerberos::client::{get_service_ticket, login, Credential, LoginInput, TgsParams};
use kerberos::messages::{deframe, ApReq, TgsReq, WireKind};
use kerberos::testbed::standard_campus;
use kerberos::{KrbError, Principal, ProtocolConfig};
use krb_crypto::checksum;
use krb_crypto::rng::Drbg;
use simnet::{Datagram, Endpoint, Network, SimDuration};

struct Env {
    net: Network,
    realm: kerberos::testbed::DeployedRealm,
    rng: Drbg,
    config: ProtocolConfig,
}

fn env(config: ProtocolConfig, seed: u64) -> Env {
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, seed);
    Env { net, realm, rng: Drbg::new(seed ^ 0x9e9), config }
}

impl Env {
    fn tgt(&mut self, user: &str, pw: &str) -> Credential {
        login(
            &mut self.net,
            &self.config,
            self.realm.user_ep(user),
            self.realm.kdc_ep,
            &self.realm.user(user),
            LoginInput::Password(pw),
            &mut self.rng,
        )
        .expect("login")
    }

    fn ticket(&mut self, tgt: &Credential, service: &str) -> Result<Credential, KrbError> {
        get_service_ticket(
            &mut self.net,
            &self.config,
            self.realm.user_ep("pat"),
            self.realm.kdc_ep,
            tgt,
            &self.realm.service(service),
            TgsParams::default(),
            &mut self.rng,
        )
    }
}

#[test]
fn tampered_tgt_rejected() {
    let mut e = env(ProtocolConfig::v5_draft3(), 1);
    let mut tgt = e.tgt("pat", "correct-horse-battery");
    // Flip a byte in the sealed TGT.
    let mid = tgt.sealed_ticket.len() / 2;
    tgt.sealed_ticket[mid] ^= 0x40;
    let err = e.ticket(&tgt, "echo").unwrap_err();
    assert!(matches!(err, KrbError::Remote(_)), "{err}");
}

#[test]
fn wrong_session_key_authenticator_rejected() {
    let mut e = env(ProtocolConfig::v5_draft3(), 2);
    let mut tgt = e.tgt("pat", "correct-horse-battery");
    // Corrupt the client's copy of the session key: the authenticator
    // it seals will not decrypt under the ticket's true key.
    tgt.session_key = krb_crypto::des::DesKey::from_u64(0x1234_5678_9abc_def0).with_odd_parity();
    assert!(e.ticket(&tgt, "echo").is_err());
}

#[test]
fn checksum_required_on_tgs_requests() {
    // Hand-build a TGS request with NO checksum in the authenticator:
    // the KDC must refuse it outright.
    let config = ProtocolConfig::v5_draft3();
    let mut e = env(config.clone(), 3);
    let tgt = e.tgt("pat", "correct-horse-battery");
    let auth = Authenticator::basic(e.realm.user("pat"), e.realm.user_ep("pat").addr.0, e.net.now().0);
    let sealed_auth = auth
        .seal(config.codec, config.ticket_layer, &tgt.session_key, &mut e.rng)
        .unwrap();
    let req = TgsReq {
        tgt: tgt.sealed_ticket.clone(),
        authenticator: sealed_auth,
        service: e.realm.service("echo"),
        options: kerberos::flags::KdcOptions::empty(),
        nonce: 1,
        lifetime_us: 1_000_000,
        additional_ticket: None,
        forward_addr: None,
        authz_data: vec![],
    };
    let reply = e
        .net
        .rpc(e.realm.user_ep("pat"), e.realm.kdc_ep, req.encode(config.codec))
        .unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err);
}

#[test]
fn wrong_checksum_type_rejected() {
    // A downgrade probe: seal an MD4 checksum where the deployment
    // demands CRC-32 (and vice versa) — type must match policy exactly.
    let config = ProtocolConfig::v5_draft3(); // demands Crc32
    let mut e = env(config.clone(), 4);
    let tgt = e.tgt("pat", "correct-horse-battery");
    let mut req = TgsReq {
        tgt: tgt.sealed_ticket.clone(),
        authenticator: vec![],
        service: e.realm.service("echo"),
        options: kerberos::flags::KdcOptions::empty(),
        nonce: 2,
        lifetime_us: 1_000_000,
        additional_ticket: None,
        forward_addr: None,
        authz_data: vec![],
    };
    let cksum = checksum::compute(
        krb_crypto::checksum::ChecksumType::Md4, // wrong type, correct value
        None,
        &req.checksum_body(),
    )
    .unwrap();
    let auth = Authenticator {
        client: e.realm.user("pat"),
        addr: e.realm.user_ep("pat").addr.0,
        timestamp: e.net.now().0,
        cksum: Some(cksum),
        service_binding: None,
        subkey: None,
        seq_init: None,
    };
    req.authenticator =
        auth.seal(config.codec, config.ticket_layer, &tgt.session_key, &mut e.rng).unwrap();
    let reply = e
        .net
        .rpc(e.realm.user_ep("pat"), e.realm.kdc_ep, req.encode(config.codec))
        .unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err);
}

#[test]
fn stale_tgs_authenticator_rejected() {
    let config = ProtocolConfig::v5_draft3();
    let mut e = env(config.clone(), 5);
    let tgt = e.tgt("pat", "correct-horse-battery");
    // Build a correct request, then deliver it ten minutes later via
    // replay (the client-side helper would refresh the timestamp, so
    // capture-and-delay instead).
    let _ = e.ticket(&tgt, "echo").unwrap();
    let captured: Vec<Datagram> = e
        .net
        .traffic_log()
        .iter()
        .filter(|r| r.is_request && r.dgram.dst == e.realm.kdc_ep && r.dgram.payload.first() == Some(&(WireKind::TgsReq as u8)))
        .map(|r| r.dgram.clone())
        .collect();
    e.net.advance(SimDuration::from_mins(10));
    let reply = e.net.inject(captured.last().unwrap().clone()).unwrap().unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err);
}

#[test]
fn cross_user_ticket_substitution_fails() {
    // zach presents pat's wiretapped TGT with zach's own authenticator:
    // the authenticator cannot be sealed with the right session key.
    let config = ProtocolConfig::v5_draft3();
    let mut e = env(config.clone(), 6);
    let pat_tgt = e.tgt("pat", "correct-horse-battery");
    let zach_tgt = e.tgt("zach", "attacker-owned");
    let frankenstein = Credential {
        client: e.realm.user("zach"),
        service: pat_tgt.service.clone(),
        sealed_ticket: pat_tgt.sealed_ticket.clone(), // pat's ticket
        session_key: zach_tgt.session_key,            // zach's key
        end_time: pat_tgt.end_time,
    };
    assert!(e.ticket(&frankenstein, "echo").is_err());
}

#[test]
fn ap_request_with_garbage_ticket_rejected() {
    let config = ProtocolConfig::hardened();
    let mut e = env(config.clone(), 7);
    let files_ep = e.realm.service_ep("files");
    let req = ApReq { ticket: vec![0xab; 64], authenticator: vec![], mutual: true };
    let reply = e
        .net
        .inject(Datagram {
            src: Endpoint::new(e.realm.user_ep("zach").addr, 7777),
            dst: files_ep,
            payload: req.encode(config.codec).into(),
        })
        .unwrap()
        .unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err);
}

#[test]
fn unknown_service_in_tgs_request() {
    let mut e = env(ProtocolConfig::v5_draft3(), 8);
    let tgt = e.tgt("pat", "correct-horse-battery");
    let ghost = Principal::service("ghost", "nowhere", &e.realm.name);
    let err = get_service_ticket(
        &mut e.net,
        &e.config.clone(),
        e.realm.user_ep("pat"),
        e.realm.kdc_ep,
        &tgt,
        &ghost,
        TgsParams::default(),
        &mut e.rng,
    )
    .unwrap_err();
    assert!(err.to_string().contains("no such service"), "{err}");
}

#[test]
fn preauth_replay_rejected() {
    // Capture a preauth blob and submit it twice: the KDC's preauth
    // replay cache must catch the second.
    let mut config = ProtocolConfig::v4();
    config.preauth = kerberos::PreauthMode::EncTimestamp;
    let mut e = env(config.clone(), 9);
    let _ = e.tgt("pat", "correct-horse-battery");
    let as_req = e
        .net
        .traffic_log()
        .iter()
        .find(|r| r.is_request && r.dgram.payload.first() == Some(&(WireKind::AsReq as u8)))
        .map(|r| r.dgram.clone())
        .expect("AS request on the wire");
    let reply = e.net.inject(as_req).unwrap().unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err, "replayed preauth must fail");
}

#[test]
fn expired_service_ticket_rejected_by_server() {
    let config = ProtocolConfig::v5_draft3();
    let mut e = env(config.clone(), 10);
    let tgt = e.tgt("pat", "correct-horse-battery");
    let st = e.ticket(&tgt, "echo").unwrap();
    // Jump past the ticket end time plus skew.
    e.net.advance(SimDuration::from_secs(9 * 3600));
    let result = connect_app(
        &mut e.net,
        &config,
        e.realm.user_ep("pat"),
        e.realm.service_ep("echo"),
        &st,
        &mut e.rng,
    );
    match result {
        Err(err) => assert!(matches!(err, KrbError::Remote(_)), "{err}"),
        Ok(_) => panic!("expired ticket accepted"),
    }
}

#[test]
fn challenge_response_wrong_answer_rejected() {
    let config = ProtocolConfig::hardened();
    let mut e = env(config.clone(), 11);
    let tgt = e.tgt("pat", "correct-horse-battery");
    let st = e.ticket(&tgt, "echo").unwrap();
    // Send the ApReq, receive the challenge, answer with garbage.
    let req = ApReq { ticket: st.sealed_ticket.clone(), authenticator: vec![], mutual: true };
    let reply = e
        .net
        .rpc(e.realm.user_ep("pat"), e.realm.service_ep("echo"), req.encode(config.codec))
        .unwrap();
    let err = kerberos::messages::KrbErrorMsg::decode(config.codec, &reply).unwrap();
    assert!(err.challenge.is_some());
    // Garbage response.
    let bogus = config
        .ticket_layer
        .seal(&st.session_key, 0, b"not a valid part", &mut e.rng)
        .unwrap();
    let reply = e
        .net
        .rpc(
            e.realm.user_ep("pat"),
            e.realm.service_ep("echo"),
            kerberos::messages::frame(WireKind::ChallengeResp, bogus),
        )
        .unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err);
}

#[test]
fn servers_reject_commands_without_sessions() {
    let config = ProtocolConfig::v5_draft3();
    let mut e = env(config.clone(), 12);
    // A KRB_PRIV message to a server that has never seen this endpoint.
    let reply = e
        .net
        .inject(Datagram {
            src: Endpoint::new(e.realm.user_ep("zach").addr, 2222),
            dst: e.realm.service_ep("files"),
            payload: kerberos::messages::frame(WireKind::Priv, vec![0u8; 32]).into(),
        })
        .unwrap()
        .unwrap();
    assert_eq!(deframe(&reply).unwrap().0, WireKind::Err);
}

/// The appendix's last attack: "the attacker substitutes a different
/// ticket ... in key distribution replies from Kerberos. The encrypted
/// part of such a message does not contain any checksum to validate that
/// the message was not tampered with in transit. While this appears to
/// be more a denial-of-service attack than a penetration, it would be
/// useful for the client to know this immediately." Recommendation (c)
/// — a collision-proof checksum of the sealed ticket inside the reply —
/// gives the client that immediate knowledge.
#[test]
fn in_reply_ticket_corruption_detected_only_with_ticket_checksum() {
    use simnet::{ScriptedTap, Verdict};

    let run = |with_cksum: bool| -> (Result<Credential, KrbError>, bool) {
        let mut config = ProtocolConfig::v5_draft3();
        config.ticket_cksum_in_rep = with_cksum;
        let mut e = env(config.clone(), 13);
        let tgt = e.tgt("pat", "correct-horse-battery");

        // The in-path attacker flips a byte deep inside the TGS reply's
        // encrypted part — in the region carrying the nested sealed
        // ticket. CBC garbles two blocks there; the framing and session
        // key survive, so without a checksum the client cannot tell.
        e.net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
            if d.payload.first() == Some(&(WireKind::TgsRep as u8)) && d.payload.len() > 120 {
                let idx = d.payload.len() - 60; // inside the nested ticket
                d.payload[idx] ^= 0x10;
            }
            Verdict::Deliver
        })));
        let got = e.ticket(&tgt, "echo");
        let _ = e.net.take_tap();

        // If the client accepted the corrupted credential, does it find
        // out only when the server rejects it?
        let late_failure = match &got {
            Ok(st) => connect_app(
                &mut e.net,
                &config,
                e.realm.user_ep("pat"),
                e.realm.service_ep("echo"),
                st,
                &mut e.rng,
            )
            .is_err(),
            Err(_) => false,
        };
        (got, late_failure)
    };

    // Draft 3 as written: the client accepts the reply and discovers the
    // damage only at the server — the delayed denial of service.
    let (got, late_failure) = run(false);
    assert!(got.is_ok(), "draft3 client cannot detect the substitution");
    assert!(late_failure, "the corrupted ticket fails only at use time");

    // With recommendation (c): the client rejects the reply on the spot.
    let (got, _) = run(true);
    assert!(matches!(got, Err(KrbError::BadChecksum)), "got {got:?}");
}
