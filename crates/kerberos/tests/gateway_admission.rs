//! End-to-end tests for the admission-control gateway: clients contact
//! the gateway instead of the KDCs, the gateway forwards transparently,
//! throttles abuse, and typed SERVER_BUSY refusals drive client backoff
//! rather than failover exhaustion.

use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket_at, login_at, LoginInput, TgsParams};
use kerberos::testbed::standard_campus;
use kerberos::{KrbError, ProtocolConfig};
use krb_crypto::rng::Drbg;
use krb_gateway::GatewayConfig;
use simnet::{FaultPlan, Network, SimDuration, SimTime};

const PASSWORD: &str = "correct-horse-battery";

/// The full protocol flow works unchanged through the gateway for every
/// preset: login, TGS exchange, and an app session, with clients
/// knowing only the gateway endpoint.
#[test]
fn full_flow_works_through_gateway_for_all_presets() {
    for config in ProtocolConfig::presets() {
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let mut realm = standard_campus(&mut net, &config, 42);
        realm.add_gateway(&mut net, GatewayConfig::standard());
        let contact = realm.kdc_contact_eps();
        assert_eq!(contact, vec![realm.gateway_ep.expect("gateway deployed")]);

        let mut rng = Drbg::new(0x6a01);
        let pat = realm.user("pat");
        let pat_ep = realm.user_ep("pat");
        let tgt = login_at(
            &mut net,
            &config,
            pat_ep,
            &contact,
            &pat,
            LoginInput::Password(PASSWORD),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("login via gateway (config {}): {e}", config.name));
        assert_eq!(tgt.client, pat);

        let echo = realm.service("echo");
        let st = get_service_ticket_at(
            &mut net,
            &config,
            pat_ep,
            &contact,
            &tgt,
            &echo,
            TgsParams::default(),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("TGS via gateway (config {}): {e}", config.name));

        let mut conn = connect_app(&mut net, &config, pat_ep, realm.service_ep("echo"), &st, &mut rng)
            .expect("AP exchange");
        let reply = conn.request(&mut net, b"ping", &mut rng).expect("command");
        assert!(reply.ends_with(b"ping"), "config {}", config.name);

        let admitted = realm.with_gateway(&mut net, |g| g.stats.admitted);
        assert!(admitted >= 2, "AS + TGS both went through the gateway (saw {admitted})");
    }
}

/// A starved source bucket turns into typed busy replies; the client
/// backs off and completes once tokens refill, without burning any
/// failover budget.
#[test]
fn throttled_login_backs_off_and_completes() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let mut realm = standard_campus(&mut net, &config, 42);
    let mut gw_config = GatewayConfig::standard();
    // A hardened login is two back-to-back AS round trips (challenge
    // probe + response). Burst 2 admits exactly one login; at one
    // token per second the immediate second login must back off until
    // the bucket refills.
    gw_config.per_source_rate_per_sec = 1;
    gw_config.per_source_burst = 2;
    realm.add_gateway(&mut net, gw_config);
    let contact = realm.kdc_contact_eps();

    let mut rng = Drbg::new(0x6a02);
    let pat = realm.user("pat");
    for round in 0..2 {
        let tgt = login_at(
            &mut net,
            &config,
            realm.user_ep("pat"),
            &contact,
            &pat,
            LoginInput::Password(PASSWORD),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("login round {round} completes after backoff: {e}"));
        assert_eq!(tgt.client, pat);
    }

    let throttled = realm.with_gateway(&mut net, |g| g.stats.throttled);
    assert!(throttled > 0, "the tight bucket refused at least one request");
    let snap = net.tracer().snapshot();
    let busy_retries = snap.get("client.busy_retries{all}").copied().unwrap_or(0);
    assert!(busy_retries > 0, "SERVER_BUSY drove the client's backoff path");
}

/// Preauth-storm defense: repeated wrong guesses at one principal open
/// an exponential penalty window. The gateway stops relaying the storm
/// to the KDC, and once the window expires the *legitimate* user (with
/// the correct password) gets in and clears the record.
#[test]
fn preauth_storm_opens_penalty_window_then_legit_user_recovers() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let mut realm = standard_campus(&mut net, &config, 42);
    let mut gw_config = GatewayConfig::standard();
    gw_config.penalty.strike_threshold = 1;
    // Longer than the client's whole busy-retry backoff budget: inside
    // the window, attempts exhaust rather than outlast it.
    gw_config.penalty.base_window_us = 600_000_000;
    realm.add_gateway(&mut net, gw_config);
    let contact = realm.kdc_contact_eps();

    let sam = realm.user("sam");
    let sam_ep = realm.user_ep("sam");
    // The adversary guesses from their own workstation at sam's account.
    let zach_ep = realm.user_ep("zach");

    let mut rng = Drbg::new(0x6a03);
    let mut verdicts = Vec::new();
    for _ in 0..3 {
        let r = login_at(
            &mut net,
            &config,
            zach_ep,
            &contact,
            &sam,
            LoginInput::Password("guess-123"),
            &mut rng,
        );
        verdicts.push(r.expect_err("wrong password never logs in"));
    }
    // Guess 1: strike one (free). Guess 2: the window opens — but only
    // after the KDC's verdict came back, so the guess itself still saw
    // the real error. Guess 3: refused at the gateway; the client's
    // busy budget runs out inside the 600s window.
    assert!(
        matches!(&verdicts[2], KrbError::RetriesExhausted { last, .. } if last.contains("server busy")),
        "third guess blocked by the penalty window, got {:?}",
        verdicts[2]
    );
    let penalized = realm.with_gateway(&mut net, |g| g.stats.penalized);
    assert!(penalized > 0, "the gateway refused storm traffic itself");

    // The window expires; sam logs in with the real password.
    net.advance(SimDuration::from_secs(700));
    let tgt = login_at(
        &mut net,
        &config,
        sam_ep,
        &contact,
        &sam,
        LoginInput::Password("wombat7"),
        &mut rng,
    )
    .expect("legitimate user recovers after the storm");
    assert_eq!(tgt.client, sam);
}

/// With the master KDC crashed, the gateway's upstream failure becomes
/// a typed busy reply; the client's busy retry (which costs no failover
/// budget) lands on the next upstream in the gateway's rotation.
#[test]
fn gateway_fails_over_upstreams_when_master_is_down() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let mut realm = standard_campus(&mut net, &config, 42);
    realm.add_kdc_replicas(&mut net, 2, 42);
    realm.add_gateway(&mut net, GatewayConfig::standard());
    let contact = realm.kdc_contact_eps();

    let t0 = net.now();
    net.set_fault_plan(FaultPlan::new(9).crash(
        realm.kdc_ep.addr,
        t0,
        SimTime(t0.0 + 3_600_000_000),
    ));

    let mut rng = Drbg::new(0x6a04);
    let pat = realm.user("pat");
    let tgt = login_at(
        &mut net,
        &config,
        realm.user_ep("pat"),
        &contact,
        &pat,
        LoginInput::Password(PASSWORD),
        &mut rng,
    )
    .expect("login lands on a replica behind the gateway");
    assert_eq!(tgt.client, pat);

    let failures = realm.with_gateway(&mut net, |g| g.stats.upstream_failures);
    assert!(failures > 0, "the dead master was tried and reported busy");
}

/// Two identical runs of a throttled flow produce byte-identical event
/// streams: admission control is as deterministic as everything else.
#[test]
fn gateway_runs_are_deterministic() {
    let run = || {
        let config = ProtocolConfig::hardened();
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let mut realm = standard_campus(&mut net, &config, 42);
        let mut gw_config = GatewayConfig::standard();
        gw_config.per_source_rate_per_sec = 1;
        gw_config.per_source_burst = 2;
        realm.add_gateway(&mut net, gw_config);
        let contact = realm.kdc_contact_eps();
        let mut rng = Drbg::new(0x6a05);
        let pat = realm.user("pat");
        for _ in 0..2 {
            login_at(
                &mut net,
                &config,
                realm.user_ep("pat"),
                &contact,
                &pat,
                LoginInput::Password(PASSWORD),
                &mut rng,
            )
            .expect("login");
        }
        format!("{:?}", net.tracer().events())
    };
    assert_eq!(run(), run(), "same seed, same trace, byte for byte");
}
