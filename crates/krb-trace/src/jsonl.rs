//! Stable-field-order JSONL export.
//!
//! One event per line; the header keys `seq`, `at_us`, `span`, `kind`
//! always come first and field keys follow in emission order, so the
//! export of a deterministic run is byte-stable and golden-testable.
//! Bytes render as lowercase hex (wire payloads are ciphertext — public
//! by the paper's threat model; secrets never reach a trace, see lint
//! rule S004).

use crate::event::{Event, Value};
use std::fmt::Write as _;

/// Serialises events (in the order given) to JSON Lines.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_us\":{},\"span\":{},\"kind\":\"{}\"",
            ev.seq,
            ev.at_us,
            ev.span,
            ev.kind.label()
        );
        for (name, v) in &ev.fields {
            let _ = write!(out, ",\"{}\":", escape(name));
            match v {
                Value::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Value::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
                Value::Bytes(b) => {
                    out.push('"');
                    for byte in b.iter() {
                        let _ = write!(out, "{byte:02x}");
                    }
                    out.push('"');
                }
            }
        }
        out.push_str("}\n");
    }
    out
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    #[test]
    fn stable_field_order_and_hex_bytes() {
        let ev = Event {
            seq: 3,
            at_us: 1_000_042,
            span: 2,
            kind: EventKind::WireHop,
            fields: vec![
                ("dst_host", Value::str("kerberos.athena.mit.edu")),
                ("req", Value::Bool(true)),
                ("payload", Value::bytes(Arc::new(vec![0x01, 0xAB]))),
            ],
        };
        let line = to_jsonl(std::slice::from_ref(&ev));
        assert_eq!(
            line,
            "{\"seq\":3,\"at_us\":1000042,\"span\":2,\"kind\":\"wire.hop\",\
             \"dst_host\":\"kerberos.athena.mit.edu\",\"req\":true,\"payload\":\"01ab\"}\n"
        );
    }

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
