//! Deterministic metrics registry: counters, gauges, and sim-time
//! histograms keyed by `(name, scope)`.
//!
//! Scope is free-form — a host name, a principal, a protocol variant —
//! so one registry covers "auths issued per principal" and "bytes on
//! wire per host" alike.  Everything lives in `BTreeMap`s; a snapshot
//! flattens to `name{scope}` keys in lexicographic order, so snapshots
//! of identical runs compare byte-equal.

use std::collections::BTreeMap;

/// Flattened metrics view: `name{scope}` (histograms expand to
/// `.count` / `.sum_us` / `.max_us` sub-keys) mapped to integer values.
pub type MetricsSnapshot = BTreeMap<String, u64>;

/// Sim-time histogram moments; enough for mean/max tables without
/// storing samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Hist {
    count: u64,
    sum_us: u64,
    max_us: u64,
}

/// The registry. Owned by a tracer core; all mutation goes through the
/// `Tracer` handle.
#[derive(Clone, Debug, Default)]
pub(crate) struct Metrics {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), u64>,
    hists: BTreeMap<(String, String), Hist>,
}

impl Metrics {
    pub(crate) fn add(&mut self, name: &str, scope: &str, delta: u64) {
        let slot = self
            .counters
            .entry((name.to_string(), scope.to_string()))
            .or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    pub(crate) fn set_gauge(&mut self, name: &str, scope: &str, v: u64) {
        self.gauges.insert((name.to_string(), scope.to_string()), v);
    }

    pub(crate) fn observe_us(&mut self, name: &str, scope: &str, us: u64) {
        let h = self
            .hists
            .entry((name.to_string(), scope.to_string()))
            .or_default();
        h.count = h.count.saturating_add(1);
        h.sum_us = h.sum_us.saturating_add(us);
        h.max_us = h.max_us.max(us);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for ((name, scope), v) in self.counters.iter().chain(self.gauges.iter()) {
            out.insert(format!("{name}{{{scope}}}"), *v);
        }
        for ((name, scope), h) in &self.hists {
            out.insert(format!("{name}{{{scope}}}.count"), h.count);
            out.insert(format!("{name}{{{scope}}}.sum_us"), h.sum_us);
            out.insert(format!("{name}{{{scope}}}.max_us"), h.max_us);
        }
        out
    }

    pub(crate) fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

/// Renders a snapshot as a two-column aligned text table (the same
/// visual idiom as bench's `TextTable`, kept local so this crate stays
/// dependency-free).
pub fn render_metrics_table(snap: &MetricsSnapshot) -> String {
    let mut width = "metric".len();
    for k in snap.keys() {
        width = width.max(k.len());
    }
    let mut out = String::new();
    out.push_str(&format!("{:<width$}  value\n", "metric"));
    out.push_str(&format!("{}  -----\n", "-".repeat(width)));
    for (k, v) in snap {
        out.push_str(&format!("{k:<width$}  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_and_flat() {
        let mut m = Metrics::default();
        m.add("net.bytes", "kdc", 100);
        m.add("net.bytes", "kdc", 20);
        m.add("ap.accepted", "pat", 1);
        m.set_gauge("hosts.up", "net", 4);
        m.observe_us("span.as-exchange", "pat", 2000);
        m.observe_us("span.as-exchange", "pat", 1000);
        let s = m.snapshot();
        let keys: Vec<_> = s.keys().cloned().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(s["net.bytes{kdc}"], 120);
        assert_eq!(s["ap.accepted{pat}"], 1);
        assert_eq!(s["hosts.up{net}"], 4);
        assert_eq!(s["span.as-exchange{pat}.count"], 2);
        assert_eq!(s["span.as-exchange{pat}.sum_us"], 3000);
        assert_eq!(s["span.as-exchange{pat}.max_us"], 2000);
    }

    #[test]
    fn table_renders_aligned() {
        let mut m = Metrics::default();
        m.add("a", "x", 1);
        m.add("long.metric.name", "scope", 2);
        let t = render_metrics_table(&m.snapshot());
        assert!(t.contains("metric"));
        assert!(t.contains("a{x}"));
        assert!(t.contains("long.metric.name{scope}  2"));
    }
}
