//! Attack-narrative rendering: a trace becomes the paper's step-notation
//! transcript, with the adversary's taps and injections interleaved.
//!
//! The renderer itself is protocol-agnostic; a [`Lens`] supplies the
//! domain knowledge — mapping host names to the paper's actor letters
//! (`c`, `tgs`, `s`) and decoding wire payloads into message notation
//! (`{A_c}K_{c,tgs}, T_{c,tgs}, s, n`).  The kerberos crate provides a
//! `PaperLens`; [`RawLens`] works on any trace.

use crate::event::{Event, EventKind, Value};
use std::fmt::Write as _;

/// Domain knowledge injected into the narrator.
pub trait Lens {
    /// Short actor name for a host (e.g. `ws-pat.athena.mit.edu` -> `c(pat)`).
    fn actor(&self, host: &str) -> String;
    /// Paper-notation description of a wire payload.
    fn message(&self, payload: &[u8]) -> String;
}

/// Protocol-agnostic fallback lens: hosts by name, payloads by length.
#[derive(Clone, Copy, Debug, Default)]
pub struct RawLens;

impl Lens for RawLens {
    fn actor(&self, host: &str) -> String {
        host.to_string()
    }
    fn message(&self, payload: &[u8]) -> String {
        format!("<{} bytes>", payload.len())
    }
}

/// Renders events as a transcript, one line per event, timestamped
/// relative to the first event.
pub fn narrate(events: &[Event], lens: &dyn Lens) -> String {
    let t0 = events.first().map(|e| e.at_us).unwrap_or(0);
    let mut out = String::new();
    for ev in events {
        let t = fmt_rel(ev.at_us.saturating_sub(t0));
        match ev.kind {
            EventKind::WireHop => {
                let src = lens.actor(ev.str_field("src_host").unwrap_or("?"));
                let dst = lens.actor(ev.str_field("dst_host").unwrap_or("?"));
                let msg = match ev.bytes_field("payload") {
                    Some(b) => lens.message(b),
                    None => "<no payload>".to_string(),
                };
                let mut line = match ev.str_field("origin").unwrap_or("send") {
                    "inject" => format!("[{t:>14}] ** adversary injects {src} -> {dst}: {msg}"),
                    "tap.drop" => {
                        format!("[{t:>14}] ** adversary tap drops {src} -> {dst}: {msg}")
                    }
                    "stale" => format!("[{t:>14}] {src} -> {dst} (late): {msg}"),
                    _ => format!("[{t:>14}] {src} -> {dst}: {msg}"),
                };
                if let Some(f) = ev.str_field("fault") {
                    let _ = write!(line, "  [fault: {f}]");
                }
                if let Some(p) = ev.u64_field("parent") {
                    let _ = write!(line, "  [from #{p}]");
                }
                out.push_str(&line);
                out.push('\n');
            }
            EventKind::SpanBegin => {
                let name = ev.str_field("name").unwrap_or("?");
                let _ = writeln!(
                    out,
                    "[{t:>14}] >> {name}{}",
                    extras(ev, &["name", "parent"])
                );
            }
            EventKind::SpanEnd => {
                let name = ev.str_field("name").unwrap_or("?");
                let dur = ev.u64_field("dur_us").unwrap_or(0);
                let _ = writeln!(out, "[{t:>14}] << {name} ({})", fmt_rel(dur));
            }
            EventKind::Note => {
                let _ = writeln!(out, "[{t:>14}]  · {}", ev.str_field("text").unwrap_or(""));
            }
            EventKind::GatewayShed => {
                let src = lens.actor(ev.str_field("src").unwrap_or("?"));
                let policy = ev.str_field("policy").unwrap_or("?");
                let occ = ev.u64_field("occupancy").unwrap_or(0);
                let _ = writeln!(
                    out,
                    "[{t:>14}] !! gateway sheds {src} (policy {policy}, queue at {occ})"
                );
            }
            EventKind::GatewayThrottle => {
                let src = lens.actor(ev.str_field("src").unwrap_or("?"));
                let reason = ev.str_field("reason").unwrap_or("?");
                let _ = writeln!(out, "[{t:>14}] !! gateway throttles {src} ({reason})");
            }
            EventKind::IdsAlert => {
                let detector = ev.str_field("detector").unwrap_or("?");
                let subject = ev.str_field("subject").unwrap_or("?");
                let detail = ev.str_field("detail").unwrap_or("");
                let mut line =
                    format!("[{t:>14}] !! IDS [{detector}] {subject}: {detail}");
                if let Some(e) = ev.u64_field("evidence") {
                    let _ = write!(line, "  [evidence #{e}]");
                }
                out.push_str(&line);
                out.push('\n');
            }
            other => {
                let _ = writeln!(out, "[{t:>14}]  · {}{}", other.label(), extras(ev, &[]));
            }
        }
    }
    out
}

/// `" (k=v, k=v)"` for every field not in `skip`; empty if none.
fn extras(ev: &Event, skip: &[&str]) -> String {
    let mut parts = Vec::new();
    for (name, v) in &ev.fields {
        if skip.contains(name) {
            continue;
        }
        match v {
            Value::U64(n) => parts.push(format!("{name}={n}")),
            Value::Bool(b) => parts.push(format!("{name}={b}")),
            Value::Str(s) => parts.push(format!("{name}={s}")),
            Value::Bytes(b) => parts.push(format!("{name}=<{} bytes>", b.len())),
        }
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" ({})", parts.join(", "))
    }
}

/// `+S.UUUUUUs` relative sim-time.
fn fmt_rel(us: u64) -> String {
    format!("+{}.{:06}s", us / 1_000_000, us % 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use std::sync::Arc;

    #[test]
    fn transcript_marks_adversary_lines() {
        let t = Tracer::new();
        t.emit(
            EventKind::WireHop,
            1_000_000,
            vec![
                ("src_host", Value::str("ws-pat")),
                ("dst_host", Value::str("kdc")),
                ("origin", Value::str("send")),
                ("payload", Value::bytes(Arc::new(vec![1, 2, 3]))),
            ],
        );
        t.emit(
            EventKind::WireHop,
            2_000_000,
            vec![
                ("src_host", Value::str("ws-pat")),
                ("dst_host", Value::str("files")),
                ("origin", Value::str("inject")),
                ("payload", Value::bytes(Arc::new(vec![4]))),
            ],
        );
        t.note(2_000_001, "adversary replays captured AP-REQ");
        let text = narrate(&t.events(), &RawLens);
        assert!(text.contains("ws-pat -> kdc: <3 bytes>"));
        assert!(text.contains("** adversary injects ws-pat -> files: <1 bytes>"));
        assert!(text.contains("· adversary replays captured AP-REQ"));
        assert!(text.starts_with("[    +0.000000s]"));
        assert!(text.contains("[    +1.000000s]"));
    }

    #[test]
    fn spans_and_misc_events_render() {
        let t = Tracer::new();
        let id = t.begin_span("as-exchange", 0, vec![("client", Value::str("pat"))]);
        t.emit(
            EventKind::TicketIssued,
            500,
            vec![("client", Value::str("pat")), ("service", Value::str("krbtgt"))],
        );
        t.end_span(id, 1_000, "pat");
        let text = narrate(&t.events(), &RawLens);
        assert!(text.contains(">> as-exchange (client=pat)"));
        assert!(text.contains("· kdc.ticket_issued (client=pat, service=krbtgt)"));
        assert!(text.contains("<< as-exchange (+0.001000s)"));
    }

    #[test]
    fn gateway_events_render_as_admission_lines() {
        let t = Tracer::new();
        t.emit(
            EventKind::GatewayShed,
            100,
            vec![
                ("src", Value::str("10.0.0.9")),
                ("policy", Value::str("shed-newest")),
                ("occupancy", Value::U64(32)),
            ],
        );
        t.emit(
            EventKind::GatewayThrottle,
            200,
            vec![("src", Value::str("10.0.0.9")), ("reason", Value::str("penalty"))],
        );
        let text = narrate(&t.events(), &RawLens);
        assert!(text.contains("!! gateway sheds 10.0.0.9 (policy shed-newest, queue at 32)"));
        assert!(text.contains("!! gateway throttles 10.0.0.9 (penalty)"));
    }

    #[test]
    fn ids_alerts_render_as_detector_lines() {
        let t = Tracer::new();
        t.emit(
            EventKind::IdsAlert,
            300,
            vec![
                ("detector", Value::str("replay")),
                ("sid", Value::U64(2001)),
                ("subject", Value::str("10.0.0.11:1024")),
                ("detail", Value::str("identical ap-req re-sent 60s later")),
                ("evidence", Value::U64(42)),
            ],
        );
        let text = narrate(&t.events(), &RawLens);
        assert!(text
            .contains("!! IDS [replay] 10.0.0.11:1024: identical ap-req re-sent 60s later"));
        assert!(text.contains("[evidence #42]"));
    }
}
