//! The `Tracer` handle: a cheaply-cloneable, shared recorder of events,
//! spans, and metrics.
//!
//! One tracer is owned by a `Network` and cloned into every service
//! context, client helper, and attack harness — all clones feed the
//! same core, so the trace is a single totally-ordered record of the
//! run.  The core is guarded by a `Mutex` with poisoning recovery (the
//! panic-free rules P001/P002 apply to this crate; a poisoned lock must
//! not cascade).
//!
//! Tracing is *purely observational*: no method consumes randomness or
//! advances time.  Callers pass the sim-time (`at_us`) explicitly, so
//! instrumented and uninstrumented runs are byte-identical — the E1
//! golden matrix proves it.

use crate::event::{Event, EventKind, Value};
use crate::metrics::{Metrics, MetricsSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifier of a span; 0 means "no span" (root).
pub type SpanId = u64;

/// Default ring-buffer capacity. Large enough that soak runs keep their
/// whole trace; bounded so a runaway loop cannot exhaust memory.
const DEFAULT_CAPACITY: usize = 1 << 20;

#[derive(Debug)]
struct Core {
    events: VecDeque<Event>,
    /// Events evicted from the ring (oldest-first) since the last clear.
    evicted: u64,
    capacity: usize,
    next_seq: u64,
    next_span: u64,
    /// Stack of currently-open spans; the top is the parent of new
    /// events and spans.
    stack: Vec<SpanId>,
    /// Open span id -> (name, begin sim-time).
    open: BTreeMap<SpanId, (&'static str, u64)>,
    metrics: Metrics,
    /// Per-subscriber delivery buffers. Events land here in `push`,
    /// *before* the ring considers eviction, so a subscriber that
    /// drains regularly sees the complete stream even when the ring
    /// wraps. Payload bytes are `Arc`-shared, so the clone is cheap.
    subs: BTreeMap<u64, VecDeque<Event>>,
    next_sub: u64,
}

impl Default for Core {
    fn default() -> Self {
        Core {
            events: VecDeque::new(),
            evicted: 0,
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            next_span: 1,
            stack: Vec::new(),
            open: BTreeMap::new(),
            metrics: Metrics::default(),
            subs: BTreeMap::new(),
            next_sub: 1,
        }
    }
}

impl Core {
    fn push(&mut self, ev: Event) {
        for buf in self.subs.values_mut() {
            buf.push_back(ev.clone());
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.evicted = self.evicted.saturating_add(1);
        }
        self.events.push_back(ev);
    }
}

/// A streaming tap on a [`Tracer`]: every event recorded after
/// [`Tracer::subscribe`] is buffered for this handle until
/// [`Subscription::drain`] collects it — independently of the ring
/// buffer, so eviction never loses a subscriber an event.
///
/// The subscription is a *pull* tap, not a callback: consumers drain at
/// their own cadence (typically between simulation steps), which keeps
/// the tracer lock short-lived and lets a consumer emit new events —
/// alerts, metrics — through the same tracer without deadlocking.
/// Dropping the handle unregisters it.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    core: Arc<Mutex<Core>>,
}

impl Subscription {
    /// Takes every event buffered since the last drain, in sequence
    /// order.
    pub fn drain(&self) -> Vec<Event> {
        let mut c = self.core.lock().unwrap_or_else(|p| p.into_inner());
        match c.subs.get_mut(&self.id) {
            Some(buf) => buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Number of events currently buffered (drained by nobody yet).
    pub fn pending(&self) -> usize {
        let c = self.core.lock().unwrap_or_else(|p| p.into_inner());
        c.subs.get(&self.id).map_or(0, VecDeque::len)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut c = self.core.lock().unwrap_or_else(|p| p.into_inner());
        c.subs.remove(&self.id);
    }
}

/// Shared handle to one trace. `Clone` is a refcount bump.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Arc<Mutex<Core>>,
}

// Deliberately terse: a tracer may transitively hold every datagram of
// a run; debug-printing it should summarise, not dump.
impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.core();
        f.debug_struct("Tracer")
            .field("events", &c.events.len())
            .field("evicted", &c.evicted)
            .finish()
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    fn core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records an event at sim-time `at_us` under the innermost open
    /// span; returns its sequence number (useful as a causal parent for
    /// later events, e.g. a fault-duplicated datagram).
    pub fn emit(&self, kind: EventKind, at_us: u64, fields: Vec<(&'static str, Value)>) -> u64 {
        let mut c = self.core();
        let seq = c.next_seq;
        c.next_seq += 1;
        let span = c.stack.last().copied().unwrap_or(0);
        c.push(Event { seq, at_us, span, kind, fields });
        seq
    }

    /// Free-form annotation (adversary actions, scenario markers).
    pub fn note(&self, at_us: u64, text: &str) -> u64 {
        self.emit(EventKind::Note, at_us, vec![("text", Value::str(text))])
    }

    /// Opens a span: emits `span.begin`, pushes it on the stack so
    /// subsequent events (and child spans) attach to it.
    pub fn begin_span(
        &self,
        name: &'static str,
        at_us: u64,
        mut fields: Vec<(&'static str, Value)>,
    ) -> SpanId {
        let mut c = self.core();
        let id = c.next_span;
        c.next_span += 1;
        let parent = c.stack.last().copied().unwrap_or(0);
        c.open.insert(id, (name, at_us));
        c.stack.push(id);
        let seq = c.next_seq;
        c.next_seq += 1;
        let mut all = vec![("name", Value::str(name)), ("parent", Value::U64(parent))];
        all.append(&mut fields);
        c.push(Event { seq, at_us, span: id, kind: EventKind::SpanBegin, fields: all });
        id
    }

    /// Closes a span: emits `span.end` with its sim-time duration and
    /// records the duration in the `span.<name>` histogram under
    /// `scope`.  Closing an unknown/already-closed span is a no-op.
    pub fn end_span(&self, id: SpanId, at_us: u64, scope: &str) {
        let mut c = self.core();
        let Some((name, begin_us)) = c.open.remove(&id) else {
            return;
        };
        c.stack.retain(|&s| s != id);
        let dur_us = at_us.saturating_sub(begin_us);
        c.metrics.observe_us(&format!("span.{name}"), scope, dur_us);
        let seq = c.next_seq;
        c.next_seq += 1;
        c.push(Event {
            seq,
            at_us,
            span: id,
            kind: EventKind::SpanEnd,
            fields: vec![("name", Value::str(name)), ("dur_us", Value::U64(dur_us))],
        });
    }

    /// Increments counter `name{scope}` by `delta`.
    pub fn counter(&self, name: &str, scope: &str, delta: u64) {
        self.core().metrics.add(name, scope, delta);
    }

    /// Sets gauge `name{scope}` to `v`.
    pub fn gauge(&self, name: &str, scope: &str, v: u64) {
        self.core().metrics.set_gauge(name, scope, v);
    }

    /// Records a sim-time sample into histogram `name{scope}`.
    pub fn observe_us(&self, name: &str, scope: &str, us: u64) {
        self.core().metrics.observe_us(name, scope, us);
    }

    /// Deterministic flattened metrics view.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core().metrics.snapshot()
    }

    /// All buffered events in sequence order (clones; payload bytes are
    /// shared, not copied).
    pub fn events(&self) -> Vec<Event> {
        self.core().events.iter().cloned().collect()
    }

    /// The sequence number the next event will get. Doubles as a
    /// watermark for filtered log views.
    pub fn next_seq(&self) -> u64 {
        self.core().next_seq
    }

    /// Number of events evicted from the ring buffer (0 in tests —
    /// nonzero means the capacity is too small for the scenario).
    pub fn evicted(&self) -> u64 {
        self.core().evicted
    }

    /// Replaces the ring-buffer capacity (existing overflow evicts
    /// oldest-first immediately).
    pub fn set_capacity(&self, capacity: usize) {
        let mut c = self.core();
        c.capacity = capacity.max(1);
        while c.events.len() > c.capacity {
            c.events.pop_front();
            c.evicted = c.evicted.saturating_add(1);
        }
    }

    /// Drops buffered events and resets metrics; sequence and span
    /// counters keep advancing so watermarks stay valid. Subscriber
    /// buffers are left intact: a clear is a ring-buffer operation, not
    /// a stream truncation.
    pub fn clear(&self) {
        let mut c = self.core();
        c.events.clear();
        c.evicted = 0;
        c.metrics.clear();
    }

    /// Registers a streaming tap: every event recorded from now on is
    /// buffered for the returned [`Subscription`] until drained —
    /// before ring-buffer eviction, so a full ring still delivers the
    /// complete stream to subscribers.
    pub fn subscribe(&self) -> Subscription {
        let mut c = self.core();
        let id = c.next_sub;
        c.next_sub += 1;
        c.subs.insert(id, VecDeque::new());
        Subscription { id, core: Arc::clone(&self.core) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_time() {
        let t = Tracer::new();
        let outer = t.begin_span("as-exchange", 1_000, vec![("client", Value::str("pat"))]);
        t.emit(EventKind::TicketIssued, 1_500, vec![]);
        let inner = t.begin_span("crypto", 1_600, vec![]);
        t.end_span(inner, 1_700, "pat");
        t.end_span(outer, 2_000, "pat");

        let evs = t.events();
        assert_eq!(evs.len(), 5);
        // Event inside outer span is attributed to it.
        assert_eq!(evs[1].span, outer);
        // Inner span records outer as parent.
        assert_eq!(evs[2].u64_field("parent"), Some(outer));
        // Durations land in the histogram.
        let s = t.snapshot();
        assert_eq!(s["span.as-exchange{pat}.count"], 1);
        assert_eq!(s["span.as-exchange{pat}.sum_us"], 1_000);
        assert_eq!(s["span.crypto{pat}.sum_us"], 100);
    }

    #[test]
    fn end_span_is_idempotent() {
        let t = Tracer::new();
        let id = t.begin_span("x", 0, vec![]);
        t.end_span(id, 10, "s");
        t.end_span(id, 20, "s");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.snapshot()["span.x{s}.count"], 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = Tracer::new();
        t.set_capacity(3);
        for i in 0..5 {
            t.note(i, "n");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 2);
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.next_seq(), 5);
    }

    #[test]
    fn clones_share_one_core() {
        let t = Tracer::new();
        let u = t.clone();
        u.note(5, "from clone");
        assert_eq!(t.events().len(), 1);
        u.counter("c", "s", 2);
        assert_eq!(t.snapshot()["c{s}"], 2);
    }

    #[test]
    fn subscriber_survives_ring_eviction() {
        // The regression the IDS depends on: a full ring (eviction
        // counter > 0) must still deliver *every* event to subscribers.
        let t = Tracer::new();
        t.set_capacity(3);
        let sub = t.subscribe();
        for i in 0..10 {
            t.note(i, "n");
        }
        assert!(t.evicted() > 0, "ring must have wrapped for this test to bite");
        assert_eq!(t.events().len(), 3);
        let seen = sub.drain();
        assert_eq!(seen.len(), 10, "subscriber missed evicted events");
        let seqs: Vec<u64> = seen.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn subscribe_starts_at_subscription_point_and_drains_incrementally() {
        let t = Tracer::new();
        t.note(0, "before");
        let sub = t.subscribe();
        t.note(1, "a");
        assert_eq!(sub.pending(), 1);
        assert_eq!(sub.drain().len(), 1);
        assert!(sub.drain().is_empty());
        t.note(2, "b");
        t.note(3, "c");
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn dropped_subscription_stops_buffering() {
        let t = Tracer::new();
        let sub = t.subscribe();
        t.note(0, "a");
        drop(sub);
        t.note(1, "b");
        // A fresh subscription is independent of the dropped one.
        let sub2 = t.subscribe();
        t.note(2, "c");
        assert_eq!(sub2.drain().len(), 1);
    }

    #[test]
    fn clear_does_not_truncate_subscriber_stream() {
        let t = Tracer::new();
        let sub = t.subscribe();
        t.note(0, "a");
        t.clear();
        t.note(1, "b");
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn clear_keeps_watermarks() {
        let t = Tracer::new();
        t.note(0, "a");
        t.note(1, "b");
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.next_seq(), 2);
        t.note(2, "c");
        assert_eq!(t.events()[0].seq, 2);
    }
}
