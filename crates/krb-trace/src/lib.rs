//! Deterministic observability for the Kerberos reproduction.
//!
//! Every claim in Bellovin & Merritt is a claim about *what crossed the
//! wire and why the verifier accepted it*.  This crate records exactly
//! that: a [`Tracer`] handle is threaded through simnet and the protocol
//! crates, emitting typed [`Event`]s (wire hops, ticket issuance,
//! authenticator verdicts, retries, faults, replay-cache hits) grouped
//! under sim-time [`tracer::SpanId`] spans, plus a metrics registry of
//! counters / gauges / sim-time histograms keyed by `(name, scope)`.
//!
//! Determinism contract: the crate never reads wall-clock time, never
//! consumes randomness, and stores everything in `BTreeMap`s — two runs
//! of the same seeded scenario produce byte-identical [`jsonl`] exports.
//! Secrecy contract: events carry redacted key fingerprints only; the
//! krb-lint rule S004 forbids secret-typed values in emission arguments.
//!
//! Sinks: an in-memory ring buffer (capacity-bounded, eviction counted),
//! a stable-field-order JSONL exporter for golden tests, and a
//! [`narrate`] renderer turning a trace into the paper's step-notation
//! transcript (`c -> tgs: {A_c}K_{c,tgs}, T_{c,tgs} ...`) with the
//! adversary's taps and injections interleaved.

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod narrate;
pub mod tracer;

pub use event::{Event, EventKind, Value};
pub use jsonl::to_jsonl;
pub use metrics::{render_metrics_table, MetricsSnapshot};
pub use narrate::{narrate, Lens, RawLens};
pub use tracer::{SpanId, Subscription, Tracer};
