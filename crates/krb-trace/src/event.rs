//! Typed protocol events and their field values.

use std::sync::Arc;

/// A field value attached to an [`Event`].
///
/// The variants mirror what JSONL can carry with a stable rendering:
/// numbers, booleans, strings, and raw wire bytes (hex-encoded on
/// export).  Bytes are `Arc`-shared so recording a datagram payload is
/// a refcount bump, not a copy — tracing must never perturb the
/// simulation it observes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    U64(u64),
    Bool(bool),
    Str(String),
    Bytes(Arc<Vec<u8>>),
}

impl Value {
    /// String value from anything displayable.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Shared-byte value; the caller's `Arc` is bumped, never copied.
    pub fn bytes(b: Arc<Vec<u8>>) -> Value {
        Value::Bytes(b)
    }
}

/// The closed set of event types the protocol stack emits.
///
/// C-like so matching is total and `label()` gives the stable JSONL
/// `kind` string; adding a variant is an API change that golden tests
/// will surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// One datagram leg on the wire (request or reply, any origin).
    WireHop,
    /// A span opened (`name`, `parent` fields).
    SpanBegin,
    /// A span closed (`name`, `dur_us` fields).
    SpanEnd,
    /// A client retry/backoff attempt after a transient failure.
    Retry,
    /// KDC issued a ticket (AS or TGS exchange).
    TicketIssued,
    /// Client decrypted a KDC reply and recovered a session key.
    TicketDecrypted,
    /// Application server accepted an authenticator.
    AuthAccepted,
    /// Application server rejected a request (`reason` field).
    AuthRejected,
    /// Replay cache recognised a previously-seen authenticator.
    ReplayBlocked,
    /// Replay cache failed closed (post-restart TRY-LATER window).
    FailClosed,
    /// Verifier issued a handheld-authenticator challenge.
    ChallengeIssued,
    /// KDC rejected preauthentication.
    PreauthFailed,
    /// KDC rate limiter refused a client.
    RateLimited,
    /// Datagram arrived at a crashed host.
    HostDown,
    /// A host restarted (volatile state reset).
    HostRestart,
    /// Gateway shed a request: admission queue full, the load-shedding
    /// policy refused or evicted it (`policy`, `src`, `occupancy`
    /// fields).
    GatewayShed,
    /// Gateway throttled a request before it reached the queue: token
    /// bucket empty or principal in a penalty window (`reason`, `src`
    /// fields).
    GatewayThrottle,
    /// Intrusion-detection alert: a krb-ids detector fired (`detector`,
    /// `sid`, `subject`, `detail`, `evidence` fields).
    IdsAlert,
    /// Free-form annotation (adversary actions, scenario markers).
    Note,
}

impl EventKind {
    /// Stable dotted label used as the JSONL `kind` field.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::WireHop => "wire.hop",
            EventKind::SpanBegin => "span.begin",
            EventKind::SpanEnd => "span.end",
            EventKind::Retry => "client.retry",
            EventKind::TicketIssued => "kdc.ticket_issued",
            EventKind::TicketDecrypted => "client.ticket_decrypted",
            EventKind::AuthAccepted => "ap.accepted",
            EventKind::AuthRejected => "ap.rejected",
            EventKind::ReplayBlocked => "replay.blocked",
            EventKind::FailClosed => "replay.fail_closed",
            EventKind::ChallengeIssued => "auth.challenge",
            EventKind::PreauthFailed => "kdc.preauth_failed",
            EventKind::RateLimited => "kdc.rate_limited",
            EventKind::HostDown => "net.host_down",
            EventKind::HostRestart => "net.host_restart",
            EventKind::GatewayShed => "gateway.shed",
            EventKind::GatewayThrottle => "gateway.throttle",
            EventKind::IdsAlert => "ids.alert",
            EventKind::Note => "note",
        }
    }
}

/// One recorded event: a sequence number (total order), the sim-time it
/// happened at, the span it belongs to (0 = root), its kind, and typed
/// fields in emission order (which is also JSONL field order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub at_us: u64,
    pub span: u64,
    pub kind: EventKind,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn bool_field(&self, name: &str) -> Option<bool> {
        match self.field(name) {
            Some(Value::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Value::Str(v)) => Some(v.as_str()),
            _ => None,
        }
    }

    pub fn bytes_field(&self, name: &str) -> Option<&Arc<Vec<u8>>> {
        match self.field(name) {
            Some(Value::Bytes(v)) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_accessors_are_typed() {
        let e = Event {
            seq: 0,
            at_us: 7,
            span: 0,
            kind: EventKind::Note,
            fields: vec![
                ("n", Value::U64(3)),
                ("b", Value::Bool(true)),
                ("s", Value::str("hi")),
                ("p", Value::bytes(Arc::new(vec![1, 2]))),
            ],
        };
        assert_eq!(e.u64_field("n"), Some(3));
        assert_eq!(e.bool_field("b"), Some(true));
        assert_eq!(e.str_field("s"), Some("hi"));
        assert_eq!(e.bytes_field("p").map(|b| b.len()), Some(2));
        assert_eq!(e.u64_field("s"), None);
        assert_eq!(e.str_field("missing"), None);
    }

    #[test]
    fn labels_are_unique() {
        let all = [
            EventKind::WireHop,
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Retry,
            EventKind::TicketIssued,
            EventKind::TicketDecrypted,
            EventKind::AuthAccepted,
            EventKind::AuthRejected,
            EventKind::ReplayBlocked,
            EventKind::FailClosed,
            EventKind::ChallengeIssued,
            EventKind::PreauthFailed,
            EventKind::RateLimited,
            EventKind::HostDown,
            EventKind::HostRestart,
            EventKind::GatewayShed,
            EventKind::GatewayThrottle,
            EventKind::IdsAlert,
            EventKind::Note,
        ];
        let mut labels: Vec<_> = all.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
