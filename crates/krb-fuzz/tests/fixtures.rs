//! Pinned fixtures: the seed corpus and the per-strategy regression
//! cases under `corpus/` are byte-for-byte records.
//!
//! Regenerate after an intentional codec change with:
//!
//! ```text
//! KRB_FUZZ_BLESS=1 cargo test -p krb-fuzz --test fixtures
//! ```

use krb_fuzz::classify::{classify, diagnostic, with_quiet_panics, Verdict};
use krb_fuzz::corpus::{
    codec_from_label, codec_label, from_hex, generate_all_seeds, to_hex, SeedCase, Target,
};
use krb_fuzz::mutate::{mutate, Strategy, STRATEGIES};
use krb_fuzz::reduce::minimize;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use testkit::TestRng;

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus").join(sub)
}

fn blessing() -> bool {
    std::env::var_os("KRB_FUZZ_BLESS").is_some()
}

/// The checked-in seed corpus is exactly what generation produces today:
/// every seed matches its `.hex` file, and no stale files linger.
#[test]
fn seed_corpus_files_are_pinned() {
    let dir = corpus_dir("seeds");
    let seeds = generate_all_seeds();
    if blessing() {
        fs::create_dir_all(&dir).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            fs::remove_file(entry.unwrap().path()).unwrap();
        }
        for seed in &seeds {
            fs::write(dir.join(format!("{}.hex", seed.name)), to_hex(&seed.bytes)).unwrap();
        }
        return;
    }
    let mut expected = BTreeSet::new();
    for seed in &seeds {
        let file = format!("{}.hex", seed.name);
        let path = dir.join(&file);
        let on_disk = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing seed fixture {}: {e}", path.display()));
        assert_eq!(
            from_hex(&on_disk).unwrap(),
            seed.bytes,
            "seed {} drifted from its pinned fixture (KRB_FUZZ_BLESS=1 to re-pin)",
            seed.name
        );
        expected.insert(file);
    }
    for entry in fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(expected.contains(&name), "stale seed fixture {name}");
    }
}

/// Deterministically finds one rejected mutant per strategy and shrinks
/// it while preserving its reject class.
fn regression_case(
    strategy: Strategy,
    seeds: &[SeedCase],
    corpus: &[Vec<u8>],
) -> (&'static str, Target, Vec<u8>, String) {
    let slot = STRATEGIES.iter().position(|s| *s == strategy).unwrap_or(0) as u64;
    let mut rng = TestRng::new(0xf1c5_0000 + slot);
    for _ in 0..10_000 {
        let case = &seeds[rng.index(seeds.len())];
        let mutant = mutate(strategy, &case.bytes, corpus, &mut rng);
        if let Verdict::Rejected(class) = classify(case.codec, case.target, &mutant) {
            let small = minimize(&mutant, |b| {
                matches!(classify(case.codec, case.target, b),
                         Verdict::Rejected(ref c) if *c == class)
            });
            return (codec_label(case.codec), case.target, small, class);
        }
    }
    panic!("strategy {} never produced a reject in 10k tries", strategy.name());
}

/// Every mutation strategy has at least one pinned regression fixture:
/// a minimized rejected input plus its golden diagnostic.
#[test]
fn regression_fixtures_are_pinned_per_strategy() {
    let dir = corpus_dir("regressions");
    if blessing() {
        let seeds = generate_all_seeds();
        let corpus: Vec<Vec<u8>> = seeds.iter().map(|s| s.bytes.clone()).collect();
        fs::create_dir_all(&dir).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            fs::remove_file(entry.unwrap().path()).unwrap();
        }
        with_quiet_panics(|| {
            for strategy in STRATEGIES {
                let (codec, target, bytes, class) = regression_case(strategy, &seeds, &corpus);
                let stem = format!("{}--{}--{}", strategy.name(), codec, target.name());
                let codec_v = codec_from_label(codec).unwrap();
                let diag = diagnostic(codec_v, target, &bytes).unwrap();
                fs::write(dir.join(format!("{stem}.hex")), to_hex(&bytes)).unwrap();
                fs::write(dir.join(format!("{stem}.txt")), format!("{class}\n{diag}\n")).unwrap();
            }
        });
        return;
    }

    let mut covered = BTreeSet::new();
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("hex") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let parts: Vec<&str> = stem.split("--").collect();
        assert_eq!(parts.len(), 3, "bad fixture name {stem}");
        let strategy = Strategy::from_name(parts[0])
            .unwrap_or_else(|| panic!("unknown strategy in {stem}"));
        let codec = codec_from_label(parts[1]).unwrap_or_else(|| panic!("unknown codec in {stem}"));
        let target = Target::from_name(parts[2]).unwrap_or_else(|| panic!("unknown target in {stem}"));
        let bytes = from_hex(&fs::read_to_string(&path).unwrap()).unwrap();
        let golden = fs::read_to_string(path.with_extension("txt")).unwrap();
        let mut lines = golden.lines();
        let class = lines.next().unwrap_or_default();
        let diag = lines.next().unwrap_or_default();

        match classify(codec, target, &bytes) {
            Verdict::Rejected(c) => assert_eq!(c, class, "reject class drifted for {stem}"),
            v => panic!("regression {stem} no longer rejects: {v:?}"),
        }
        assert_eq!(
            diagnostic(codec, target, &bytes).as_deref(),
            Some(diag),
            "diagnostic drifted for {stem}"
        );
        covered.insert(strategy.name());
    }
    for strategy in STRATEGIES {
        assert!(
            covered.contains(strategy.name()),
            "no regression fixture pinned for strategy {} (KRB_FUZZ_BLESS=1 to generate)",
            strategy.name()
        );
    }
}

/// Two same-seed harness runs are byte-identical (the library-level
/// version of the `scripts/fuzz.sh` smoke check).
#[test]
fn fuzz_runs_are_reproducible_end_to_end() {
    use krb_fuzz::harness::{run, FuzzConfig};
    let seeds = generate_all_seeds();
    let cfg = FuzzConfig { seed: 0x5eed, iterations: 1_000 };
    let a = run(&seeds, &cfg);
    let b = run(&seeds, &cfg);
    assert_eq!(a.render(cfg.seed), b.render(cfg.seed));
    assert_eq!(a.panics, 0, "{:#?}", a.findings);
    assert_eq!(a.decoded + a.rejected, cfg.iterations);
}
