//! Wrong-key harness for the encryption layers: whatever was sealed
//! under one key and opened under another must yield `Ok` (garbage
//! plaintext — the non-integrity layers cannot tell) or a typed error
//! (the hardened MAC), and must NEVER panic. This is exactly the state
//! a server is in mid password-guessing storm: every guess hands the
//! open path a mismatched key.
//!
//! On top of the open itself, whatever the open returns is pushed
//! through the post-decryption decoders (priv-part layouts, the safe
//! parser, EncApRepPart) — the real downstream consumers of wrong-key
//! garbage.

use kerberos::enclayer::EncLayer;
use kerberos::messages::EncApRepPart;
use kerberos::session::{decode_priv_draft3, decode_priv_hardened};
use kerberos::KrbError;
use krb_crypto::des::{DesKey, ScheduledKey};
use krb_crypto::rng::Drbg;
use krb_fuzz::classify::with_quiet_panics;
use kerberos::encoding::Codec;
use std::panic::{catch_unwind, AssertUnwindSafe};

const LAYERS: [EncLayer; 4] = [
    EncLayer::V4Pcbc,
    EncLayer::V5Cbc { confounder: false },
    EncLayer::V5Cbc { confounder: true },
    EncLayer::HardenedCbc,
];

fn layer_name(layer: EncLayer) -> &'static str {
    match layer {
        EncLayer::V4Pcbc => "v4-pcbc",
        EncLayer::V5Cbc { confounder: false } => "v5-cbc",
        EncLayer::V5Cbc { confounder: true } => "v5-cbc-confounder",
        EncLayer::HardenedCbc => "hardened-cbc",
    }
}

/// Runs `f`, demanding Ok-or-typed-error: a panic fails the test with a
/// labelled message.
fn must_not_panic<T>(label: &str, f: impl FnOnce() -> Result<T, KrbError>) -> Option<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r.ok(),
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".into());
            panic!("{label} panicked: {msg}");
        }
    }
}

/// Seal under key A, open under key B, for every layer pair, plaintext
/// shape, and IV: the open is total, and its output survives every
/// downstream decoder without a panic.
#[test]
fn wrong_key_open_is_total_across_all_layers() {
    let mut rng = Drbg::new(0x0bad_c0de);
    with_quiet_panics(|| {
        for seal_layer in LAYERS {
            for open_layer in LAYERS {
                for case in 0u64..48 {
                    let key_a = ScheduledKey::new(
                        DesKey::from_u64(0x0123_4567_89ab_cdef ^ case.wrapping_mul(0x9e37)).with_odd_parity(),
                    );
                    let key_b = ScheduledKey::new(
                        DesKey::from_u64(0xfedc_ba98_7654_3210 ^ case.wrapping_mul(0x85eb)).with_odd_parity(),
                    );
                    let len = (case as usize * 7) % 96;
                    let pt: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(case as u8)).collect();
                    let iv = case.wrapping_mul(0x1234_5678_9abc_def1);

                    let label = format!(
                        "seal {} / open {} / case {case}",
                        layer_name(seal_layer),
                        layer_name(open_layer)
                    );
                    let Some(ct) =
                        must_not_panic(&format!("{label} (seal)"), || {
                            seal_layer.seal_with(&key_a, iv, &pt, &mut rng)
                        })
                    else {
                        continue;
                    };

                    // The mismatched open: wrong key, possibly wrong
                    // layer, possibly wrong IV.
                    let opened = must_not_panic(&format!("{label} (open)"), || {
                        open_layer.open_with(&key_b, iv ^ 0xff, &ct)
                    });

                    // Hardened integrity MUST reject a wrong-key open.
                    if open_layer == EncLayer::HardenedCbc && seal_layer == EncLayer::HardenedCbc {
                        assert!(
                            opened.is_none(),
                            "{label}: hardened MAC accepted a wrong-key open"
                        );
                    }

                    // Whatever came out is what the session layer and
                    // app server would decode next: all paths total.
                    if let Some(garbage) = opened {
                        must_not_panic(&format!("{label} (draft3)"), || {
                            decode_priv_draft3(&garbage)
                        });
                        must_not_panic(&format!("{label} (hardened part)"), || {
                            decode_priv_hardened(&garbage)
                        });
                        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
                            must_not_panic(&format!("{label} (ap-rep-part)"), || {
                                EncApRepPart::decode(codec, &garbage)
                            });
                        }
                    }
                }
            }
        }
    });
}

/// Same-key sanity: every layer round-trips under the right key, so the
/// wrong-key test above is exercising real seals.
#[test]
fn right_key_roundtrips_all_layers() {
    let mut rng = Drbg::new(0x600d_c0de);
    for layer in LAYERS {
        let key = ScheduledKey::new(DesKey::from_u64(0x2468_ACE0_1357_9BDF).with_odd_parity());
        let pt = b"the quick brown fox".to_vec();
        let ct = layer.seal_with(&key, 7, &pt, &mut rng).expect("seal");
        let got = layer.open_with(&key, 7, &ct).expect("open");
        match layer {
            // V5's data-first layout leaves padding for the application
            // framing to strip; the layer returns block-aligned bytes.
            EncLayer::V5Cbc { .. } => {
                assert!(got.starts_with(&pt), "layer {}", layer_name(layer));
                assert!(got.len().is_multiple_of(8), "layer {}", layer_name(layer));
            }
            _ => assert_eq!(got, pt, "layer {}", layer_name(layer)),
        }
    }
}
