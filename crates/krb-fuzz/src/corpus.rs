//! Seed corpus: real protocol bytes captured from testbed flows.
//!
//! Seeds are generated, not hand-written: a standard campus is deployed
//! on the simulated network, a user logs in, obtains a service ticket,
//! and connects to an application server; everything that crossed the
//! wire is captured from the passive wiretap ([`simnet`]'s traffic log).
//! A failed login for an unknown principal adds a KRB-ERROR frame. The
//! sealed sub-structures the frames carry (tickets, authenticators,
//! enc-parts) get their own seeds, encoded directly, since the fuzzer
//! attacks their decoders behind the encryption layer too.
//!
//! Generation is a pure function of nothing — fixed configs, fixed
//! seeds — so the checked-in corpus under `corpus/seeds/` is a pinned
//! record: a test regenerates it and compares byte-for-byte.

use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos::encoding::Codec;
use kerberos::messages::WireKind;
use kerberos::testbed::standard_campus;
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::rng::Drbg;
use simnet::{Network, SimDuration};

/// Which decoder a seed (and its mutants) is fed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Target {
    /// Framed KRB_AS_REQ.
    AsReq,
    /// Framed KRB_AS_REP.
    AsRep,
    /// Framed KRB_TGS_REQ.
    TgsReq,
    /// Framed KRB_TGS_REP.
    TgsRep,
    /// Framed KRB_AP_REQ.
    ApReq,
    /// Framed KRB_AP_REP.
    ApRep,
    /// Framed KRB_ERROR.
    Error,
    /// A ticket body (what sits under the service key).
    Ticket,
    /// An authenticator body (under the session key).
    Authenticator,
    /// The encrypted part of an AS reply.
    EncAsRepPart,
    /// The encrypted part of a TGS reply.
    EncTgsRepPart,
    /// The encrypted part of an AP reply.
    EncApRepPart,
    /// A full framed KRB_SAFE message (cleartext part + checksum
    /// trailer; the total [`kerberos::session::parse_safe_body`] path).
    SafeMsg,
    /// A KRB_PRIV plaintext part — what the session layer decodes after
    /// decryption, where a wrong key under the non-integrity layers
    /// hands the decoder arbitrary bytes.
    PrivPart,
    /// A framed challenge response as the app server sees it after
    /// opening the seal (EncApRepPart under a ChallengeResp frame).
    ChallengeResp,
}

/// Every target, in a fixed order.
pub const TARGETS: [Target; 15] = [
    Target::AsReq,
    Target::AsRep,
    Target::TgsReq,
    Target::TgsRep,
    Target::ApReq,
    Target::ApRep,
    Target::Error,
    Target::Ticket,
    Target::Authenticator,
    Target::EncAsRepPart,
    Target::EncTgsRepPart,
    Target::EncApRepPart,
    Target::SafeMsg,
    Target::PrivPart,
    Target::ChallengeResp,
];

impl Target {
    /// Stable name, used in seed names and fixture file names.
    pub fn name(self) -> &'static str {
        match self {
            Target::AsReq => "as-req",
            Target::AsRep => "as-rep",
            Target::TgsReq => "tgs-req",
            Target::TgsRep => "tgs-rep",
            Target::ApReq => "ap-req",
            Target::ApRep => "ap-rep",
            Target::Error => "krb-error",
            Target::Ticket => "ticket",
            Target::Authenticator => "authenticator",
            Target::EncAsRepPart => "enc-as-rep-part",
            Target::EncTgsRepPart => "enc-tgs-rep-part",
            Target::EncApRepPart => "enc-ap-rep-part",
            Target::SafeMsg => "krb-safe",
            Target::PrivPart => "priv-part",
            Target::ChallengeResp => "challenge-resp",
        }
    }

    /// Inverse of [`Target::name`].
    pub fn from_name(s: &str) -> Option<Target> {
        TARGETS.iter().copied().find(|t| t.name() == s)
    }

    fn from_wire_kind(k: WireKind) -> Option<Target> {
        Some(match k {
            WireKind::AsReq => Target::AsReq,
            WireKind::AsRep => Target::AsRep,
            WireKind::TgsReq => Target::TgsReq,
            WireKind::TgsRep => Target::TgsRep,
            WireKind::ApReq => Target::ApReq,
            WireKind::ApRep => Target::ApRep,
            WireKind::Err => Target::Error,
            // PRIV/challenge frames on the wire carry ciphertext; their
            // decoders are fuzzed through the post-decryption PrivPart /
            // ChallengeResp structure seeds instead. SAFE and app-data
            // frames do not occur in the capture flow.
            _ => return None,
        })
    }
}

/// Stable label for a codec, used in seed and fixture names.
pub fn codec_label(codec: Codec) -> &'static str {
    match codec {
        Codec::Legacy => "legacy",
        Codec::Typed => "typed",
        Codec::Wire => "wire",
    }
}

/// Inverse of [`codec_label`].
pub fn codec_from_label(s: &str) -> Option<Codec> {
    match s {
        "legacy" => Some(Codec::Legacy),
        "typed" => Some(Codec::Typed),
        "wire" => Some(Codec::Wire),
        _ => None,
    }
}

/// One seed: canonical bytes for one decoder under one codec.
#[derive(Clone, Debug)]
pub struct SeedCase {
    /// Stable name: `<codec>--<target>--<index>`.
    pub name: String,
    /// The codec the bytes were encoded under.
    pub codec: Codec,
    /// The decoder the bytes (and their mutants) are fed to.
    pub target: Target,
    /// The canonical bytes.
    pub bytes: Vec<u8>,
}

/// The deployment a codec's flow corpus is captured under: the matrix
/// presets for the codecs they actually field, and the hardened preset
/// over the tagged wire for [`Codec::Wire`].
fn config_for(codec: Codec) -> ProtocolConfig {
    match codec {
        Codec::Legacy => ProtocolConfig::v4(),
        Codec::Typed => ProtocolConfig::hardened(),
        Codec::Wire => ProtocolConfig::hardened().with_wire_codec(),
    }
}

/// Captures the flow corpus for one codec: every unique framed message
/// that crossed the wire during login → TGS → AP on the standard
/// campus, plus one failed login (KRB-ERROR), plus directly encoded
/// sealed sub-structures.
pub fn generate_seeds(codec: Codec) -> Vec<SeedCase> {
    let config = config_for(codec);
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 0x5eed);
    let mut rng = Drbg::new(0xf022);

    // The real flow: pat logs in, gets an echo ticket, connects.
    let pat_ep = realm.user_ep("pat");
    let pat = realm.user("pat");
    if let Some(pw) = realm.passwords.get("pat") {
        if let Ok(tgt) = login(
            &mut net,
            &config,
            pat_ep,
            realm.kdc_ep,
            &pat,
            LoginInput::Password(pw),
            &mut rng,
        ) {
            if let Ok(st) = get_service_ticket(
                &mut net,
                &config,
                pat_ep,
                realm.kdc_ep,
                &tgt,
                &realm.service("echo"),
                TgsParams::default(),
                &mut rng,
            ) {
                let _ = connect_app(
                    &mut net,
                    &config,
                    pat_ep,
                    realm.service_ep("echo"),
                    &st,
                    &mut rng,
                );
            }
        }
    }
    // A login for a principal the KDC does not know yields a KRB-ERROR
    // frame on the wire (the client call itself fails; that is fine).
    let nobody = Principal::user("nobody", &realm.name);
    let _ = login(
        &mut net,
        &config,
        pat_ep,
        realm.kdc_ep,
        &nobody,
        LoginInput::Password("wrong"),
        &mut rng,
    );

    // Harvest unique framed messages with a decoder target.
    let mut seeds: Vec<SeedCase> = Vec::new();
    let mut counts = std::collections::BTreeMap::<&'static str, usize>::new();
    for rec in net.traffic_log() {
        let bytes = rec.dgram.payload.to_vec();
        let Some(&kind) = bytes.first() else { continue };
        let Some(kind) = WireKind::from_u8(kind) else { continue };
        let Some(target) = Target::from_wire_kind(kind) else { continue };
        if seeds.iter().any(|s| s.bytes == bytes) {
            continue;
        }
        let idx = counts.entry(target.name()).or_insert(0);
        let name = format!("{}--{}--{}", codec_label(codec), target.name(), idx);
        *idx += 1;
        seeds.push(SeedCase { name, codec, target, bytes });
    }

    // Sealed sub-structures, encoded directly (behind the encryption
    // layer the wiretap cannot see through).
    for (target, bytes) in structure_seeds(codec) {
        let name = format!("{}--{}--0", codec_label(codec), target.name());
        seeds.push(SeedCase { name, codec, target, bytes });
    }
    seeds
}

/// Canonical encodings of the sealed sub-structures, with fixed sample
/// values.
fn structure_seeds(codec: Codec) -> Vec<(Target, Vec<u8>)> {
    use kerberos::authenticator::Authenticator;
    use kerberos::encoding::MsgType;
    use kerberos::flags::TicketFlags;
    use kerberos::messages::{EncApRepPart, EncKdcRepPart};
    use kerberos::ticket::Ticket;
    use krb_crypto::checksum::{Checksum, ChecksumType};
    use krb_crypto::des::DesKey;

    let ticket = Ticket {
        flags: TicketFlags::empty().with(TicketFlags::INITIAL),
        client: Principal::user("pat", "ATHENA.MIT.EDU"),
        service: Principal::service("echo", "echohost", "ATHENA.MIT.EDU"),
        addr: Some(0x0a00_0001),
        auth_time: 1_000_000_000_000,
        start_time: 1_000_000_000_000,
        end_time: 1_028_800_000_000,
        session_key: DesKey::from_u64(0x0123_4567_89ab_cdef),
        transited: vec!["ATHENA.MIT.EDU".into()],
    };
    let auth = Authenticator {
        client: Principal::user("pat", "ATHENA.MIT.EDU"),
        addr: 0x0a00_0001,
        timestamp: 1_000_000_000_000,
        cksum: Some(Checksum { ctype: ChecksumType::Md4Des, value: vec![7; 16].into() }),
        service_binding: Some(Principal::service("echo", "echohost", "ATHENA.MIT.EDU")),
        subkey: Some(0xdead_beef),
        seq_init: Some(42),
    };
    let kdc_part = EncKdcRepPart {
        session_key: DesKey::from_u64(0x0123_4567_89ab_cdef),
        nonce: 0xfeed_f00d,
        ticket: ticket.encode(codec),
        end_time: 1_028_800_000_000,
        server_time: 1_000_000_000_000,
        ticket_cksum: Some(Checksum { ctype: ChecksumType::Md4, value: vec![3; 16].into() }),
    };
    let ap_part = EncApRepPart { ts_echo: 1_000_000_000_001, subkey: Some(9), seq_init: Some(1) };

    // Session-layer frames (appended after the original structures so
    // the pre-existing pinned fixtures keep their bytes and names).
    use kerberos::messages::{frame, WireKind};
    use kerberos::session::{encode_priv_draft3, encode_priv_hardened, Direction, PrivPart, Session};

    let config = config_for(codec);
    let key = DesKey::from_u64(0x2468_ACE0_1357_9BDF).with_odd_parity();
    let mut sender = Session::new(
        Principal::user("pat", "ATHENA.MIT.EDU"),
        key,
        &config,
        Direction::ClientToServer,
        100,
        500,
    );
    // Sealing cannot fail for this fixed input; an empty fallback would
    // fail the canonical-roundtrip test loudly rather than panic here.
    let safe_wire = sender
        .send_safe(b"balance: 10 credits", 1_000_000_000_000, 0x0a00_0001, &config)
        .unwrap_or_default();
    let priv_part = PrivPart {
        data: b"ls /mail".to_vec(),
        ts_or_seq: 1_000_000_000_123,
        direction: Direction::ClientToServer,
        addr: 0x0a00_0001,
    };
    // The plaintext layout matches what the deployment's priv layer
    // frames: Draft-3 data-first for the legacy stack, length-framed for
    // the hardened ones.
    let priv_bytes = match codec {
        Codec::Legacy => encode_priv_draft3(&priv_part),
        _ => encode_priv_hardened(&priv_part),
    };
    let challenge_wire = frame(WireKind::ChallengeResp, ap_part.encode(codec));

    vec![
        (Target::Ticket, ticket.encode(codec)),
        (Target::Authenticator, auth.encode(codec)),
        (Target::EncAsRepPart, kdc_part.encode(codec, MsgType::EncAsRepPart)),
        (Target::EncTgsRepPart, kdc_part.encode(codec, MsgType::EncTgsRepPart)),
        (Target::EncApRepPart, ap_part.encode(codec)),
        (Target::SafeMsg, safe_wire),
        (Target::PrivPart, priv_bytes),
        (Target::ChallengeResp, challenge_wire),
    ]
}

/// The full corpus: seeds for all three codecs, in a fixed order.
pub fn generate_all_seeds() -> Vec<SeedCase> {
    let mut all = Vec::new();
    for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
        all.extend(generate_seeds(codec));
    }
    all
}

/// Renders bytes as lowercase hex, 32 bytes per line, trailing newline —
/// the fixture file format under `corpus/`.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            s.push('\n');
        }
        s.push_str(&format!("{b:02x}"));
    }
    s.push('\n');
    s
}

/// Parses the [`to_hex`] format (whitespace ignored).
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    let digits: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !digits.len().is_multiple_of(2) {
        return Err("odd number of hex digits".into());
    }
    let nib = |b: u8| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("bad hex digit {:?}", b as char)),
        }
    };
    digits.chunks(2).map(|p| Ok(nib(p[0])? << 4 | nib(p[1])?)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("0").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn target_names_roundtrip() {
        for t in TARGETS {
            assert_eq!(Target::from_name(t.name()), Some(t));
        }
        assert!(Target::from_name("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic_and_covers_targets() {
        let a = generate_all_seeds();
        let b = generate_all_seeds();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bytes, y.bytes);
        }
        // Every codec contributes framed AS traffic, an error frame, and
        // the sealed structures.
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            for target in [Target::AsReq, Target::AsRep, Target::Error, Target::Ticket] {
                assert!(
                    a.iter().any(|s| s.codec == codec && s.target == target),
                    "missing {}/{}",
                    codec_label(codec),
                    target.name()
                );
            }
        }
    }
}
