//! The fuzzing loop: seed selection, mutation, classification, and the
//! deterministic report.

use crate::classify::{classify, with_quiet_panics, Verdict};
use crate::corpus::{to_hex, SeedCase};
use crate::mutate::{mutate, STRATEGIES};
use std::collections::BTreeMap;
use testkit::TestRng;

/// Parameters for one fuzzing run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// PRNG seed; the entire run is a pure function of (seed, corpus,
    /// iterations).
    pub seed: u64,
    /// Mutated inputs to classify.
    pub iterations: u64,
}

/// A caught panic, with enough context to reproduce and pin it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The seed case the mutant came from.
    pub seed_name: String,
    /// The mutation strategy that produced it.
    pub strategy: &'static str,
    /// The mutated input, hex-rendered.
    pub input_hex: String,
    /// The panic message.
    pub message: String,
}

/// Aggregate results of a run. [`FuzzReport::render`] is deterministic,
/// so two same-seed runs compare byte-for-byte.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Inputs classified.
    pub iterations: u64,
    /// Mutants that decoded successfully.
    pub decoded: u64,
    /// ...of which re-encoding reproduced the mutant byte-for-byte.
    pub roundtrips: u64,
    /// Mutants rejected with a typed error.
    pub rejected: u64,
    /// Mutants that panicked a decoder (always bugs).
    pub panics: u64,
    /// Reject-class histogram.
    pub classes: BTreeMap<String, u64>,
    /// Inputs classified per mutation strategy.
    pub per_strategy: BTreeMap<&'static str, u64>,
    /// Every caught panic.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Deterministic text rendering (the artifact `scripts/fuzz.sh`
    /// diffs across two same-seed runs).
    pub fn render(&self, seed: u64) -> String {
        let mut s = String::new();
        s.push_str(&format!("fuzz_codec seed=0x{seed:x} iterations={}\n", self.iterations));
        s.push_str(&format!(
            "decoded={} rejected={} panics={} roundtrips={}\n",
            self.decoded, self.rejected, self.panics, self.roundtrips
        ));
        s.push_str("reject classes:\n");
        for (class, n) in &self.classes {
            s.push_str(&format!("  {n:>8}  {class}\n"));
        }
        s.push_str("strategies:\n");
        for (name, n) in &self.per_strategy {
            s.push_str(&format!("  {n:>8}  {name}\n"));
        }
        for f in &self.findings {
            s.push_str(&format!(
                "PANIC seed={} strategy={} msg={}\ninput:\n{}",
                f.seed_name, f.strategy, f.message, f.input_hex
            ));
        }
        s
    }
}

/// Runs the fuzzing loop over `seeds`. Every iteration picks a seed case
/// and a strategy, mutates, and classifies; nothing in the loop reads a
/// clock or any state outside (cfg, seeds).
pub fn run(seeds: &[SeedCase], cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport { iterations: cfg.iterations, ..FuzzReport::default() };
    if seeds.is_empty() {
        return report;
    }
    // Splice partners: the raw bytes of every seed.
    let corpus: Vec<Vec<u8>> = seeds.iter().map(|s| s.bytes.clone()).collect();
    let mut rng = TestRng::new(cfg.seed);
    with_quiet_panics(|| {
        for _ in 0..cfg.iterations {
            let case = &seeds[rng.index(seeds.len())];
            let strategy = STRATEGIES[rng.index(STRATEGIES.len())];
            let mutant = mutate(strategy, &case.bytes, &corpus, &mut rng);
            *report.per_strategy.entry(strategy.name()).or_insert(0) += 1;
            match classify(case.codec, case.target, &mutant) {
                Verdict::Decoded { roundtrip } => {
                    report.decoded += 1;
                    if roundtrip {
                        report.roundtrips += 1;
                    }
                }
                Verdict::Rejected(class) => {
                    report.rejected += 1;
                    *report.classes.entry(class).or_insert(0) += 1;
                }
                Verdict::Panicked(message) => {
                    report.panics += 1;
                    report.findings.push(Finding {
                        seed_name: case.name.clone(),
                        strategy: strategy.name(),
                        input_hex: to_hex(&mutant),
                        message,
                    });
                }
            }
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_all_seeds;

    #[test]
    fn every_input_is_classified_and_none_panic() {
        let seeds = generate_all_seeds();
        let report = run(&seeds, &FuzzConfig { seed: 0x5eed, iterations: 500 });
        assert_eq!(report.decoded + report.rejected + report.panics, 500);
        assert_eq!(report.panics, 0, "{:#?}", report.findings);
        assert!(report.rejected > 0, "mutations should produce rejects");
    }

    #[test]
    fn same_seed_runs_render_identically() {
        let seeds = generate_all_seeds();
        let cfg = FuzzConfig { seed: 42, iterations: 300 };
        let a = run(&seeds, &cfg).render(cfg.seed);
        let b = run(&seeds, &cfg).render(cfg.seed);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_yields_empty_report() {
        let r = run(&[], &FuzzConfig { seed: 1, iterations: 100 });
        assert_eq!(r.decoded + r.rejected + r.panics, 0);
    }
}
