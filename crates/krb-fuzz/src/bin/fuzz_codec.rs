//! Deterministic codec fuzzer.
//!
//! ```text
//! fuzz_codec [--seed <dec|0xhex>] [--iters <n>]
//! ```
//!
//! Regenerates the seed corpus from the testbed, runs the mutation loop,
//! and prints the deterministic report. Exit status: 0 when no decoder
//! panicked, 1 when any input panicked, 2 on bad arguments.

use krb_fuzz::corpus::generate_all_seeds;
use krb_fuzz::harness::{run, FuzzConfig};
use std::process::ExitCode;

const DEFAULT_SEED: u64 = 0x5eed;
const DEFAULT_ITERS: u64 = 10_000;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: fuzz_codec [--seed <dec|0xhex>] [--iters <n>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seed = DEFAULT_SEED;
    let mut iterations = DEFAULT_ITERS;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = match args.get(i + 1).and_then(|v| parse_u64(v)) {
            Some(v) => v,
            None => return usage(),
        };
        match args[i].as_str() {
            "--seed" => seed = value,
            "--iters" => iterations = value,
            _ => return usage(),
        }
        i += 2;
    }

    let seeds = generate_all_seeds();
    let report = run(&seeds, &FuzzConfig { seed, iterations });
    print!("{}", report.render(seed));
    if report.panics > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
