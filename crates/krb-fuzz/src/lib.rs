//! # krb-fuzz
//!
//! A dependency-free, fully deterministic fuzzing harness for the
//! kerberos codec. The paper's attacks all hinge on what a parser will
//! accept off the wire; this crate turns that observation on our own
//! implementation and proves the panic-hygiene bar (krb-lint P001)
//! holds under *adversarial* bytes, not just well-formed ones.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Mutation choices come from a seeded
//!    [`testkit::TestRng`]; there is no wall clock, no coverage
//!    instrumentation, no thread scheduling. Two runs with the same seed
//!    produce byte-identical reports (`scripts/fuzz.sh` diffs them).
//! 2. **Total classification.** Every mutated input must decode to `Ok`
//!    or to a *typed* [`kerberos::KrbError`]. A panic is a finding, never
//!    an accepted outcome ([`classify`]).
//! 3. **Real seeds.** The corpus is captured from real testbed flows
//!    (login, TGS, AP exchanges on the simulated campus), not synthetic
//!    frames, so mutations start from bytes the protocol actually emits
//!    ([`corpus`]).
//! 4. **Minimized regressions.** Any interesting input is shrunk by a
//!    deterministic ddmin-style reducer ([`reduce`]) and pinned under
//!    `corpus/regressions/` with its golden diagnostic.

pub mod classify;
pub mod corpus;
pub mod harness;
pub mod mutate;
pub mod reduce;
