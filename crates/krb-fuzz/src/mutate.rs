//! Mutation strategies, driven by a seeded PRNG.
//!
//! Each strategy is a total function: any input (including empty)
//! produces some output, and every random draw is bounded and guarded so
//! mutation itself can never panic — the only component allowed to
//! "fail" in this crate is the decoder under test.

use kerberos::encoding::wire;
use testkit::TestRng;

/// The mutation strategies the harness cycles through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Flip 1–4 random bits.
    BitFlip,
    /// Overwrite 1–4 random bytes with random values.
    ByteFlip,
    /// Write a lying 32-bit big-endian length somewhere (huge, zero, or
    /// off-by-a-little) — attacks every length-framed field and the
    /// envelope length.
    LengthLie,
    /// Overwrite an early byte (frame kind, magic, version, msg-type
    /// region) with a known tag value — the cross-context confusion
    /// probe.
    TagSwap,
    /// Cut the input at a random point.
    Truncate,
    /// Duplicate a random range in place.
    Duplicate,
    /// Keep a prefix of the input, then splice in the suffix of another
    /// corpus entry.
    Splice,
}

/// Every strategy, in a fixed order.
pub const STRATEGIES: [Strategy; 7] = [
    Strategy::BitFlip,
    Strategy::ByteFlip,
    Strategy::LengthLie,
    Strategy::TagSwap,
    Strategy::Truncate,
    Strategy::Duplicate,
    Strategy::Splice,
];

impl Strategy {
    /// Stable name, used in reports and fixture file names.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::BitFlip => "bit-flip",
            Strategy::ByteFlip => "byte-flip",
            Strategy::LengthLie => "length-lie",
            Strategy::TagSwap => "tag-swap",
            Strategy::Truncate => "truncate",
            Strategy::Duplicate => "duplicate",
            Strategy::Splice => "splice",
        }
    }

    /// Inverse of [`Strategy::name`].
    pub fn from_name(s: &str) -> Option<Strategy> {
        STRATEGIES.iter().copied().find(|st| st.name() == s)
    }
}

/// Tag bytes worth swapping in: wire msg-types, typed-codec msg-types,
/// frame kinds, and a couple of never-valid values.
const TAG_POOL: [u8; 14] = [
    wire::TICKET,
    wire::AUTHENTICATOR,
    wire::AS_REQ,
    wire::AS_REP,
    wire::TGS_REQ,
    wire::AP_REQ,
    wire::KRB_ERROR,
    wire::MAGIC,
    wire::VERSION,
    0x00,
    0x03, // typed-codec AsReq
    0x07, // frame kind Err
    0x7f,
    0xff,
];

/// Applies `strategy` to `input`, drawing all choices from `rng`.
/// `corpus` supplies splice partners; it may be empty.
pub fn mutate(
    strategy: Strategy,
    input: &[u8],
    corpus: &[Vec<u8>],
    rng: &mut TestRng,
) -> Vec<u8> {
    if input.is_empty() {
        // Nothing to mutate structurally; emit a short random frame.
        let mut out = vec![0u8; 1 + rng.index(8)];
        rng.fill(&mut out);
        return out;
    }
    let mut out = input.to_vec();
    match strategy {
        Strategy::BitFlip => {
            for _ in 0..=rng.index(4) {
                let bit = rng.index(out.len() * 8);
                out[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Strategy::ByteFlip => {
            for _ in 0..=rng.index(4) {
                let i = rng.index(out.len());
                out[i] = rng.next_u64() as u8;
            }
        }
        Strategy::LengthLie => {
            if out.len() < 4 {
                let i = rng.index(out.len());
                out[i] = 0xff;
            } else {
                let off = rng.index(out.len() - 3);
                let lie: u32 = match rng.index(3) {
                    0 => 0xffff_ffff,
                    1 => rng.below(16) as u32,
                    _ => (rng.next_u64() as u32) | 0x0100_0000,
                };
                out[off..off + 4].copy_from_slice(&lie.to_be_bytes());
            }
        }
        Strategy::TagSwap => {
            let i = rng.index(out.len().min(8));
            out[i] = *rng.pick(&TAG_POOL);
        }
        Strategy::Truncate => {
            out.truncate(rng.index(out.len()));
        }
        Strategy::Duplicate => {
            let a = rng.index(out.len());
            let span = 1 + rng.index((out.len() - a).min(32));
            let chunk: Vec<u8> = out[a..a + span].to_vec();
            let at = a + span;
            out.splice(at..at, chunk);
        }
        Strategy::Splice => match corpus.iter().filter(|c| !c.is_empty()).count() {
            0 => {
                out.truncate(rng.index(out.len()));
            }
            _ => {
                let others: Vec<&Vec<u8>> = corpus.iter().filter(|c| !c.is_empty()).collect();
                let other = *rng.pick(&others);
                let keep = rng.index(out.len() + 1);
                let from = rng.index(other.len());
                out.truncate(keep);
                out.extend_from_slice(&other[from..]);
            }
        },
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_roundtrip() {
        for s in STRATEGIES {
            assert_eq!(Strategy::from_name(s.name()), Some(s));
        }
        assert!(Strategy::from_name("nope").is_none());
    }

    #[test]
    fn mutation_is_deterministic() {
        let input = b"the quick brown fox jumps over the lazy dog".to_vec();
        let corpus = vec![b"spliceme".to_vec()];
        for s in STRATEGIES {
            let a = mutate(s, &input, &corpus, &mut TestRng::new(7));
            let b = mutate(s, &input, &corpus, &mut TestRng::new(7));
            assert_eq!(a, b, "{}", s.name());
        }
    }

    #[test]
    fn mutation_never_panics_on_tiny_inputs() {
        let corpus: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2, 3]];
        let mut rng = TestRng::new(3);
        for s in STRATEGIES {
            for input in [&[][..], &[0][..], &[1, 2][..], &[1, 2, 3, 4][..]] {
                for _ in 0..64 {
                    let _ = mutate(s, input, &corpus, &mut rng);
                }
            }
        }
    }

    #[test]
    fn truncate_shortens_and_duplicate_lengthens() {
        let input = vec![9u8; 64];
        let mut rng = TestRng::new(11);
        assert!(mutate(Strategy::Truncate, &input, &[], &mut rng).len() < 64);
        assert!(mutate(Strategy::Duplicate, &input, &[], &mut rng).len() > 64);
    }
}
