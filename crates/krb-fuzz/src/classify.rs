//! The crash/reject classifier: every decode must yield `Ok` or a typed
//! error. A panic is never an acceptable outcome — it is the finding the
//! whole harness exists to catch.

use crate::corpus::Target;
use kerberos::authenticator::Authenticator;
use kerberos::encoding::{Codec, MsgType};
use kerberos::messages::{
    deframe, frame, ApRep, ApReq, AsRep, AsReq, EncApRepPart, EncKdcRepPart, KrbErrorMsg, TgsRep,
    TgsReq, WireKind,
};
use kerberos::session::{
    decode_priv_draft3, decode_priv_hardened, encode_priv_draft3, encode_priv_hardened,
    parse_safe_body,
};
use kerberos::ticket::Ticket;
use kerberos::KrbError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What one input did to one decoder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Decoded successfully. `roundtrip` is whether re-encoding the
    /// decoded message reproduced the input byte-for-byte (canonical
    /// inputs must; mutants that decode may legitimately normalize —
    /// e.g. tolerated trailing bytes drop out).
    Decoded {
        /// Re-encode equals input.
        roundtrip: bool,
    },
    /// Rejected with a typed error; the string is the stable reject
    /// class from [`reject_class`].
    Rejected(String),
    /// The decoder panicked. Always a bug.
    Panicked(String),
}

/// Collapses a [`KrbError`] to a short, stable class used in the
/// reject-class histogram and the pinned regression diagnostics.
pub fn reject_class(e: &KrbError) -> String {
    match e {
        KrbError::Decode(what) => format!("decode/{what}"),
        KrbError::DecodeAt { what, field, .. } => {
            if field.is_empty() {
                format!("decode-at/{what}")
            } else {
                format!("decode-at/{field}/{what}")
            }
        }
        KrbError::Envelope { codec, field, .. } => format!("envelope/{codec}/{field}"),
        KrbError::WrongType { .. } => "wrong-type".to_string(),
        other => format!("other/{other}"),
    }
}

/// Decodes `bytes` as `target` under `codec` and, on success, re-encodes
/// for the round-trip check.
fn decode_reencode(codec: Codec, target: Target, bytes: &[u8]) -> Result<Vec<u8>, KrbError> {
    Ok(match target {
        Target::AsReq => AsReq::decode(codec, bytes)?.encode(codec),
        Target::AsRep => AsRep::decode(codec, bytes)?.encode(codec),
        Target::TgsReq => TgsReq::decode(codec, bytes)?.encode(codec),
        Target::TgsRep => TgsRep::decode(codec, bytes)?.encode(codec),
        Target::ApReq => ApReq::decode(codec, bytes)?.encode(codec),
        Target::ApRep => ApRep::decode(codec, bytes)?.encode(codec),
        Target::Error => KrbErrorMsg::decode(codec, bytes)?.encode(codec),
        Target::Ticket => Ticket::decode(codec, bytes)?.encode(codec),
        Target::Authenticator => Authenticator::decode(codec, bytes)?.encode(codec),
        Target::EncAsRepPart => EncKdcRepPart::decode(codec, MsgType::EncAsRepPart, bytes)?
            .encode(codec, MsgType::EncAsRepPart),
        Target::EncTgsRepPart => EncKdcRepPart::decode(codec, MsgType::EncTgsRepPart, bytes)?
            .encode(codec, MsgType::EncTgsRepPart),
        Target::EncApRepPart => EncApRepPart::decode(codec, bytes)?.encode(codec),
        Target::SafeMsg => {
            let (kind, body) = deframe(bytes)?;
            if kind != WireKind::Safe {
                return Err(KrbError::Decode("not a KRB_SAFE message"));
            }
            frame(WireKind::Safe, parse_safe_body(body)?.encode())
        }
        Target::PrivPart => match codec {
            Codec::Legacy => encode_priv_draft3(&decode_priv_draft3(bytes)?),
            _ => encode_priv_hardened(&decode_priv_hardened(bytes)?),
        },
        Target::ChallengeResp => {
            let (kind, body) = deframe(bytes)?;
            if kind != WireKind::ChallengeResp {
                return Err(KrbError::Decode("not a challenge response"));
            }
            frame(WireKind::ChallengeResp, EncApRepPart::decode(codec, body)?.encode(codec))
        }
    })
}

/// The pinned diagnostic for a rejected input: the typed error's full
/// `Display` rendering (what the regression fixtures golden against).
pub fn diagnostic(codec: Codec, target: Target, bytes: &[u8]) -> Option<String> {
    match decode_reencode(codec, target, bytes) {
        Ok(_) => None,
        Err(e) => Some(e.to_string()),
    }
}

/// Classifies one input. Panics are caught and reported as
/// [`Verdict::Panicked`]; run inside [`with_quiet_panics`] to keep the
/// default hook from spraying backtraces for expected catches.
pub fn classify(codec: Codec, target: Target, bytes: &[u8]) -> Verdict {
    match catch_unwind(AssertUnwindSafe(|| decode_reencode(codec, target, bytes))) {
        Ok(Ok(reencoded)) => Verdict::Decoded { roundtrip: reencoded == bytes },
        Ok(Err(e)) => Verdict::Rejected(reject_class(&e)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Verdict::Panicked(msg)
        }
    }
}

/// Runs `f` with the global panic hook silenced (saved and restored
/// around the call), so caught decoder panics do not spray backtraces
/// into the deterministic report stream.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(saved);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_seeds, TARGETS};

    #[test]
    fn canonical_seeds_decode_and_roundtrip() {
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            for seed in generate_seeds(codec) {
                assert_eq!(
                    classify(seed.codec, seed.target, &seed.bytes),
                    Verdict::Decoded { roundtrip: true },
                    "seed {}",
                    seed.name
                );
            }
        }
    }

    #[test]
    fn empty_input_is_always_a_typed_reject() {
        for codec in [Codec::Legacy, Codec::Typed, Codec::Wire] {
            for target in TARGETS {
                match classify(codec, target, &[]) {
                    Verdict::Rejected(_) => {}
                    v => panic!("empty input gave {v:?} for {}", target.name()),
                }
            }
        }
    }

    #[test]
    fn reject_classes_are_stable_strings() {
        let e = KrbError::Envelope { codec: "wire", field: "magic", offset: 0, found: Some(0) };
        assert_eq!(reject_class(&e), "envelope/wire/magic");
        let e = KrbError::DecodeAt { what: "truncated field", field: "nonce", offset: 9 };
        assert_eq!(reject_class(&e), "decode-at/nonce/truncated field");
        assert_eq!(reject_class(&KrbError::WrongType { expected: 1, found: 2 }), "wrong-type");
    }

    #[test]
    fn a_panicking_probe_is_caught() {
        // Not a decoder — proves the catch/report path works.
        let v = with_quiet_panics(|| {
            match catch_unwind(|| panic!("boom")) {
                Ok(()) => Verdict::Decoded { roundtrip: false },
                Err(p) => Verdict::Panicked(
                    p.downcast_ref::<&str>().map(|s| (*s).to_string()).unwrap_or_default(),
                ),
            }
        });
        assert_eq!(v, Verdict::Panicked("boom".into()));
    }
}
