//! A minimizing reducer for interesting inputs (ddmin-style).
//!
//! Deterministic: no randomness, no wall clock — the candidate order is
//! a pure function of the input length, so a minimized regression
//! fixture is reproducible from its original capture.

/// Shrinks `input` while `still_interesting` holds, by repeatedly
/// deleting chunks (halving granularity as deletions stop landing).
/// Returns the smallest interesting input found; if `input` is not
/// interesting to begin with, returns it unchanged.
pub fn minimize(input: &[u8], still_interesting: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = input.to_vec();
    if !still_interesting(&cur) {
        return cur;
    }
    let mut n: usize = 2;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut deleted = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if still_interesting(&candidate) {
                cur = candidate;
                n = n.saturating_sub(1).max(2);
                deleted = true;
                break;
            }
            start = end;
        }
        if !deleted {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_single_interesting_byte() {
        let mut input = vec![0u8; 200];
        input[137] = 0x42;
        let out = minimize(&input, |b| b.contains(&0x42));
        assert_eq!(out, vec![0x42]);
    }

    #[test]
    fn keeps_order_sensitive_pairs() {
        // Interesting = contains the subsequence [1, 2] adjacently.
        let input = vec![9, 9, 1, 2, 9, 9, 9];
        let out = minimize(&input, |b| b.windows(2).any(|w| w == [1, 2]));
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn uninteresting_input_returned_unchanged() {
        let input = vec![1, 2, 3];
        assert_eq!(minimize(&input, |_| false), input);
    }

    #[test]
    fn is_deterministic() {
        let input: Vec<u8> = (0..=255).collect();
        let pred = |b: &[u8]| b.iter().map(|&x| x as u32).sum::<u32>() > 1000;
        assert_eq!(minimize(&input, pred), minimize(&input, pred));
    }
}
