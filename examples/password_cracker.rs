//! The paper's password-guessing attack, as the intruder would run it:
//! wiretap the login dialog, then grind a dictionary against the
//! recorded reply — and the two fixes (exponential key exchange,
//! preauthentication) shutting it down.
//!
//! Run: `cargo run --release --example password_cracker`

use kerberos_limits::atk::pw_guess::crack_as_reply;
use kerberos_limits::atk::workload::guess_list;
use kerberos_limits::krb::client::{login, LoginInput};
use kerberos_limits::krb::messages::{AsRep, WireKind};
use kerberos_limits::krb::testbed::standard_campus;
use kerberos_limits::krb::ProtocolConfig;
use kerberos_limits::net::{Network, SimDuration};
use krb_crypto::rng::Drbg;
use std::time::Instant;

fn main() {
    let guesses = guess_list();
    println!("cracker dictionary: {} guesses (words + 1990-style mutations)\n", guesses.len());

    for config in ProtocolConfig::presets() {
        println!("=== {} ===", config.name);
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 1);
        let mut rng = Drbg::new(2);

        // sam logs in; sam's password is a dictionary word with a digit.
        let sam = realm.user("sam");
        login(
            &mut net,
            &config,
            realm.user_ep("sam"),
            realm.kdc_ep,
            &sam,
            LoginInput::Password("wombat7"),
            &mut rng,
        )
        .expect("victim login");

        // The wiretap picks the AS reply (and any cleartext challenge)
        // out of the traffic log.
        let sam_ep = realm.user_ep("sam");
        let mut challenge = None;
        let mut enc_part = None;
        for r in net.traffic_log() {
            if r.dgram.dst != sam_ep {
                continue;
            }
            match r.dgram.payload.first().copied().and_then(WireKind::from_u8) {
                Some(WireKind::Err) => {
                    if let Ok(e) = kerberos_limits::krb::messages::KrbErrorMsg::decode(config.codec, &r.dgram.payload)
                    {
                        challenge = e.challenge.or(challenge);
                    }
                }
                Some(WireKind::AsRep) => {
                    let rep = AsRep::decode(config.codec, &r.dgram.payload).expect("parse");
                    if rep.dh_public.is_some() {
                        println!("  wiretap: AS reply is sealed under an exponential-key-exchange layer");
                        println!("  -> nothing to grind a dictionary against. SAFE.\n");
                        enc_part = None;
                        break;
                    }
                    enc_part = Some(rep.enc_part);
                }
                _ => {}
            }
        }

        if let Some(enc) = enc_part {
            let t0 = Instant::now();
            match crack_as_reply(&config, &sam, &enc, challenge, &guesses) {
                Some(pw) => println!(
                    "  CRACKED: sam's password is {pw:?} ({} guesses max, {:.2}s)\n",
                    guesses.len(),
                    t0.elapsed().as_secs_f64()
                ),
                None => println!("  no guess verified (strong password)\n"),
            }
        }
    }

    println!("paper: \"An intruder who has recorded many such login dialogs has good odds of");
    println!("finding several new passwords; empirically, users do not pick good passwords");
    println!("unless forced to.\"");
}
