//! The paper's hardware, end to end: a handheld authenticator answering
//! a login challenge, a host encryption unit that never exposes keys,
//! and the keystore/random-number services.
//!
//! Run: `cargo run --example hardware_login`

use kerberos_limits::hw::{EncryptionUnit, HandheldAuthenticator};
use kerberos_limits::krb::client::{login, LoginInput};
use kerberos_limits::krb::testbed::standard_campus;
use kerberos_limits::krb::ProtocolConfig;
use kerberos_limits::net::{Network, SimDuration};
use krb_crypto::key::KeyPurpose;
use krb_crypto::rng::Drbg;

fn main() {
    let config = ProtocolConfig::hardened(); // hha_login is on
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 55);
    let mut rng = Drbg::new(56);

    // The user's token, enrolled once at the security office.
    println!("== handheld-authenticator login ==");
    let mut device = HandheldAuthenticator::enroll(realm.user("pat"), "correct-horse-battery");
    println!("device enrolled for {}", device.owner());

    let cell = std::cell::RefCell::new(&mut device);
    let answer = |r: u64| {
        println!("  KDC challenge R = {r:#018x}; device displays the response key");
        cell.borrow_mut().respond(r)
    };
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Handheld(&answer),
        &mut rng,
    )
    .expect("device login");
    println!("  logged in as {} WITHOUT the password ever touching the workstation\n", tgt.client);

    // The host encryption unit: all key handling behind handles.
    println!("== host encryption unit ==");
    let mut unit = EncryptionUnit::new(config.clone(), 57);
    let svc_slot = unit.load_key(realm.service_keys["files"], KeyPurpose::Service);
    let sess_slot = unit.gen_key(KeyPurpose::AppSession);
    println!("loaded service key -> {svc_slot:?}; generated session key -> {sess_slot:?}");

    let ct = unit.seal_data(sess_slot, 1, b"data sealed without host-visible keys").expect("seal");
    let pt = unit.open_data(sess_slot, 1, &ct).expect("open");
    println!("sealed {} bytes and opened them again: {:?}", ct.len(), String::from_utf8_lossy(&pt));

    // The purpose tags at work.
    println!("\n== key-usage enforcement ==");
    match unit.decrypt_ticket(sess_slot, &ct) {
        Err(e) => println!("using a session slot to decrypt a ticket: REFUSED ({e})"),
        Ok(_) => unreachable!("purpose enforcement failed"),
    }

    // The keystore blob cycle.
    println!("\n== keystore blobs ==");
    let channel = unit.gen_key(KeyPurpose::KeyStore);
    let blob = unit.export_sealed_blob(sess_slot, channel).expect("export");
    println!("exported a sealed blob ({} bytes) — raw key bytes never left the unit", blob.len());
    let restored = unit.import_sealed_blob(&blob, channel).expect("import");
    assert_eq!(unit.open_data(restored, 1, &ct).expect("open via restored slot"), pt);
    println!("re-imported the blob; restored slot decrypts the earlier ciphertext");

    println!("\n== audit log (untamperable, key-free) ==");
    for line in unit.audit_log() {
        println!("  {line}");
    }
}
