//! Ticket forwarding and the cascading-trust problem — the paper's
//! argument for deleting the feature, run live.
//!
//! Run: `cargo run --example forwarding`

use kerberos_limits::krb::client::{forward_tgt, get_service_ticket, login, LoginInput, TgsParams};
use kerberos_limits::krb::flags::TicketFlags;
use kerberos_limits::krb::testbed::standard_campus;
use kerberos_limits::krb::ticket::Ticket;
use kerberos_limits::krb::{Principal, ProtocolConfig};
use kerberos_limits::net::{Addr, Endpoint, Host, Network, SimDuration};
use krb_crypto::rng::Drbg;

fn main() {
    let config = ProtocolConfig::v5_draft3();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 7);
    let mut rng = Drbg::new(8);

    // Two hosts the user might hop through.
    let compute = Addr::new(10, 0, 3, 3);
    net.add_host(Host::new("compute", vec![compute]).multi_user());
    let lab = Addr::new(10, 0, 3, 66);
    net.add_host(Host::new("insecure-lab-box", vec![lab]).multi_user());

    println!("== forwarding works ==");
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .expect("login");
    println!("pat logs in on the workstation (TGT bound to {})", realm.user_ep("pat").addr);

    let fwd = forward_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, compute.0, &mut rng)
        .expect("forwarded TGT");
    println!("forwarded TGT obtained, bound to {compute}");
    let st = get_service_ticket(
        &mut net,
        &config,
        Endpoint::new(compute, 1024),
        realm.kdc_ep,
        &fwd,
        &realm.service("files"),
        TgsParams::default(),
        &mut rng,
    )
    .expect("ticket from the compute server");
    println!("...and it mints service tickets from the compute server ({})\n", st.service);

    println!("== the cascading-trust gap ==");
    // Chain A: one clean hop. Chain B: laundered through the insecure
    // lab box.
    let direct = forward_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, compute.0, &mut rng)
        .expect("direct");
    let via_lab = forward_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, lab.0, &mut rng)
        .expect("hop 1");
    let laundered = forward_tgt(
        &mut net,
        &config,
        Endpoint::new(lab, 1024),
        realm.kdc_ep,
        &via_lab,
        compute.0,
        &mut rng,
    )
    .expect("hop 2");

    let tgs_key = realm.with_kdc(&mut net, |kdc| kdc.db.lookup(&Principal::tgs(&realm.name)).unwrap().key);
    let show = |label: &str, cred: &kerberos_limits::krb::Credential| {
        let t = Ticket::unseal(config.codec, config.ticket_layer, &tgs_key, &cred.sealed_ticket).unwrap();
        println!(
            "{label}: FORWARDED={} addr={:?} transited={:?}",
            t.flags.has(TicketFlags::FORWARDED),
            t.addr.map(Addr),
            t.transited
        );
    };
    show("direct chain   ", &direct);
    show("laundered chain", &laundered);
    println!(
        "\nThe two tickets are indistinguishable to the receiving server: the flag says\n\
         'forwarded' but records no origin. \"A host A may be willing to trust\n\
         credentials from host B, and B may be willing to trust host C, but A may not\n\
         be willing to accept tickets originally created on host C.\" Hence the\n\
         paper's recommendation: \"we suggest that ticket-forwarding be deleted.\""
    );
}
