//! A day on the simulated campus: users logging in, mounting home
//! directories, reading mail, archiving files — with a passive
//! wiretapper tallying what an adversary would have harvested under each
//! protocol configuration.
//!
//! Run: `cargo run --example athena_campus`

use kerberos_limits::krb::appserver::connect_app;
use kerberos_limits::krb::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos_limits::krb::messages::WireKind;
use kerberos_limits::krb::testbed::standard_campus;
use kerberos_limits::krb::{AuthStyle, ProtocolConfig};
use kerberos_limits::net::{Network, SimDuration};
use krb_crypto::rng::Drbg;

fn main() {
    for config in ProtocolConfig::presets() {
        println!("\n=== campus day under {} ===", config.name);
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 99);
        let mut rng = Drbg::new(100);

        let mut sessions = 0;
        let mut commands = 0;
        // Three users, four mail-check sessions each across the day.
        for hour in [9u64, 11, 14, 17] {
            for (user, pw) in [("pat", "correct-horse-battery"), ("sam", "wombat7"), ("zach", "attacker-owned")] {
                let tgt = match login(
                    &mut net,
                    &config,
                    realm.user_ep(user),
                    realm.kdc_ep,
                    &realm.user(user),
                    LoginInput::Password(pw),
                    &mut rng,
                ) {
                    Ok(t) => t,
                    Err(e) => {
                        println!("  {user} login failed at {hour}:00: {e}");
                        continue;
                    }
                };
                for service in ["files", "mail"] {
                    let st = get_service_ticket(
                        &mut net,
                        &config,
                        realm.user_ep(user),
                        realm.kdc_ep,
                        &tgt,
                        &realm.service(service),
                        TgsParams::default(),
                        &mut rng,
                    )
                    .expect("ticket");
                    let mut conn = connect_app(
                        &mut net,
                        &config,
                        realm.user_ep(user),
                        realm.service_ep(service),
                        &st,
                        &mut rng,
                    )
                    .expect("session");
                    sessions += 1;
                    let cmds: Vec<Vec<u8>> = match service {
                        "files" => vec![
                            format!("PUT notes-{hour}.txt meeting notes at {hour}:00").into_bytes(),
                            b"LIST".to_vec(),
                        ],
                        _ => vec![
                            format!("SEND {user} note-to-self at {hour}:00").into_bytes(),
                            b"COUNT".to_vec(),
                            b"READ 0".to_vec(),
                        ],
                    };
                    for cmd in cmds {
                        let _ = conn.request(&mut net, &cmd, &mut rng).expect("command");
                        commands += 1;
                    }
                }
            }
            net.advance(SimDuration::from_secs(2 * 3600));
        }

        // The wiretapper's tally.
        let log = net.traffic_log();
        let count = |k: WireKind| {
            log.iter()
                .filter(|r| r.dgram.payload.first().copied().and_then(WireKind::from_u8) == Some(k))
                .count()
        };
        println!("  {sessions} sessions, {commands} commands, {} datagrams total", log.len());
        println!(
            "  adversary harvest: {} AS replies (password-guessing targets), {} AP requests \
             (ticket+authenticator pairs)",
            count(WireKind::AsRep),
            count(WireKind::ApReq),
        );
        let crackable = if config.dh_login { 0 } else { count(WireKind::AsRep) };
        let replayable = if config.auth_style == AuthStyle::ChallengeResponse || config.replay_cache {
            0
        } else {
            count(WireKind::ApReq)
        };
        println!("  of those: {crackable} offline-crackable replies, {replayable} replayable authenticators");
    }
    println!(
        "\npaper: \"Adding Kerberos to a network will, under virtually all circumstances,\n\
         significantly increase its security; our criticisms focus on the extent to which\n\
         security is improved.\""
    );
}
