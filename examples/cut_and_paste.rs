//! The appendix's showpiece: the ENC-TKT-IN-SKEY cut-and-paste attack,
//! narrated step by step, against Draft 3 with CRC-32 — then against the
//! two fixes.
//!
//! Run: `cargo run --example cut_and_paste`

use kerberos_limits::atk::cut_paste::EncTktInSkeyCutPaste;
use kerberos_limits::atk::Attack;
use kerberos_limits::krb::ProtocolConfig;
use krb_crypto::checksum::ChecksumType;
use krb_crypto::crc32::{crc32, forge_suffix};

fn main() {
    // Act 0: the enabling primitive — CRC-32 forgery by linearity.
    println!("== Act 0: CRC-32 is not collision-proof ==");
    let original = b"service=files options=NONE";
    let modified = b"service=files options=ENC-TKT-IN-SKEY tickets=[attacker-tgt] authz=";
    let patch = forge_suffix(modified, crc32(original));
    let mut forged = modified.to_vec();
    forged.extend_from_slice(&patch);
    println!("  crc32(original)         = {:08x}", crc32(original));
    println!("  crc32(modified+patch)   = {:08x}  (patch = {:02x?})", crc32(&forged), patch);
    assert_eq!(crc32(original), crc32(&forged));
    println!("  -> the checksum 'sealed in the encrypted authenticator' still verifies.\n");

    // Act 1: the full attack against Draft 3 as written.
    println!("== Act 1: against v5-draft3 (CRC-32 permitted, cname check omitted) ==");
    let r = EncTktInSkeyCutPaste.run(&ProtocolConfig::v5_draft3(), 1991);
    println!("  outcome: {}", if r.succeeded { "BREACH" } else { "safe" });
    println!("  {}\n", r.evidence);

    // Act 2: the fix the designers intended (cname match).
    println!("== Act 2: with the cname check Draft 3 inadvertently omitted ==");
    let mut fixed = ProtocolConfig::v5_draft3();
    fixed.enforce_cname_match = true;
    let r = EncTktInSkeyCutPaste.run(&fixed, 1991);
    println!("  outcome: {}", if r.succeeded { "BREACH" } else { "safe" });
    println!("  {}\n", r.evidence);

    // Act 3: the structural fix (collision-proof checksum).
    println!("== Act 3: with a collision-proof checksum (MD4 encrypted with DES) ==");
    let mut fixed = ProtocolConfig::v5_draft3();
    fixed.checksum = ChecksumType::Md4Des;
    let r = EncTktInSkeyCutPaste.run(&fixed, 1991);
    println!("  outcome: {}", if r.succeeded { "BREACH" } else { "safe" });
    println!("  {}\n", r.evidence);

    println!("paper: \"because of the encryption, the enemy would be unable to either");
    println!("discern or match the checksum. In other words, the context is critical.\"");
}
