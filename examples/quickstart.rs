//! Quickstart: stand up a realm, log in, get a service ticket, and talk
//! to a kerberized server — under all three protocol configurations.
//!
//! Run: `cargo run --example quickstart`

use kerberos_limits::krb::appserver::connect_app;
use kerberos_limits::krb::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos_limits::krb::testbed::standard_campus;
use kerberos_limits::krb::ProtocolConfig;
use kerberos_limits::net::{Network, SimDuration};
use krb_crypto::rng::Drbg;

fn main() {
    for config in ProtocolConfig::presets() {
        println!("\n=== configuration: {} ===", config.name);

        // A campus: KDC, workstations for pat/sam/zach, four services.
        let mut net = Network::new();
        net.advance(SimDuration::from_secs(1_000_000));
        let realm = standard_campus(&mut net, &config, 42);
        let mut rng = Drbg::new(7);

        // 1. Login (the AS exchange): password -> ticket-granting
        //    credential.
        let pat = realm.user("pat");
        let tgt = login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &pat,
            LoginInput::Password("correct-horse-battery"),
            &mut rng,
        )
        .expect("login");
        println!("1. logged in as {pat}; TGT expires at t={}s", tgt.end_time / 1_000_000);

        // 2. Service ticket (the TGS exchange).
        let echo = realm.service("echo");
        let st = get_service_ticket(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &tgt,
            &echo,
            TgsParams::default(),
            &mut rng,
        )
        .expect("service ticket");
        println!("2. obtained a ticket for {echo}");

        // 3. Application session (the AP exchange, with mutual
        //    authentication).
        let mut conn = connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
            .expect("AP exchange");
        println!("3. authenticated to the echo service (mutual auth verified)");

        // 4. Commands.
        let reply = conn.request(&mut net, b"hello, kerberos", &mut rng).expect("request");
        println!("4. server replied: {}", String::from_utf8_lossy(&reply));

        println!(
            "   wire traffic so far: {} datagrams (all visible to the adversary)",
            net.traffic_log().len()
        );
    }
}
