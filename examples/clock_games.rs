//! "The security of Kerberos depends critically on synchronized clocks":
//! spoofing an unauthenticated time service to resurrect a stale
//! authenticator — and the authenticated time service refusing to budge.
//!
//! Run: `cargo run --example clock_games`

use kerberos_limits::atk::time_spoof::TimeSpoof;
use kerberos_limits::atk::Attack;
use kerberos_limits::krb::ProtocolConfig;
use kerberos_limits::net::time::{
    krb_key::MacKey, sync_authenticated, sync_unauthenticated, AuthTimeService, SyncOutcome,
    TimeService, TIME_PORT,
};
use kerberos_limits::net::{
    Addr, Clock, Datagram, Endpoint, Host, Network, ScriptedTap, SimDuration, Verdict,
};

fn main() {
    // Scene 1: the raw mechanics of clock spoofing.
    println!("== Scene 1: rewriting an unauthenticated time reply ==");
    let mut net = Network::new();
    let ws = net.add_host(Host::new("ws", vec![Addr::new(10, 0, 0, 1)]).with_clock(Clock::skewed(0, 0)));
    let mut th = Host::new("timehost", vec![Addr::new(10, 0, 0, 9)]);
    th.bind(TIME_PORT, Box::new(TimeService));
    net.add_host(th);
    net.advance(SimDuration::from_secs(1000));
    let ts_ep = Endpoint::new(Addr::new(10, 0, 0, 9), TIME_PORT);

    net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
        if d.src.port == TIME_PORT && d.payload.len() >= 4 {
            let old = u32::from_be_bytes(d.payload[..4].try_into().unwrap());
            d.payload[..4].copy_from_slice(&(old - 600).to_be_bytes());
        }
        Verdict::Deliver
    })));
    sync_unauthenticated(&mut net, ws, ts_ep).expect("sync");
    let _ = net.take_tap();
    println!(
        "true time: {}s; workstation now believes: {}s (10 minutes in the past)",
        net.now().0 / 1_000_000,
        net.host_time(ws).0 / 1_000_000
    );

    // The authenticated service shrugs the same tap off.
    let key = MacKey(0x5ec_u64);
    let mut ath = Host::new("authtime", vec![Addr::new(10, 0, 0, 10)]);
    ath.bind(TIME_PORT, Box::new(AuthTimeService::new(key)));
    net.add_host(ath);
    let ats_ep = Endpoint::new(Addr::new(10, 0, 0, 10), TIME_PORT);
    net.set_tap(Box::new(ScriptedTap::new(|d: &mut Datagram, _| {
        if d.src.port == TIME_PORT && d.payload.len() >= 4 {
            let old = u32::from_be_bytes(d.payload[..4].try_into().unwrap());
            d.payload[..4].copy_from_slice(&(old - 600).to_be_bytes());
        }
        Verdict::Deliver
    })));
    let outcome = sync_authenticated(&mut net, ws, ats_ep, key, 42).expect("rpc");
    let _ = net.take_tap();
    println!("authenticated sync against the same tap: {outcome:?} (clock untouched)\n");
    assert_eq!(outcome, SyncOutcome::Rejected);

    // Scene 2: the full A3 attack against each configuration.
    println!("== Scene 2: stale-authenticator replay via clock spoof (attack A3) ==");
    for config in ProtocolConfig::presets() {
        let r = TimeSpoof.run(&config, 3);
        println!("  {:10} -> {}: {}", config.name, if r.succeeded { "BREACH" } else { "safe" }, r.evidence);
    }
    println!(
        "\npaper: \"the Kerberos protocols involve mutual trust among four parties: the\n\
         client, server, authentication server and time server.\""
    );
}
