#!/usr/bin/env bash
# Tier-1 verification, fully offline:
#   1. hermeticity guard — no crates-io (non-path) dependency anywhere
#   2. release build of every target (including benches)
#   3. full test suite
#
# Usage: scripts/verify.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermeticity guard =="
# Every [dependencies]/[dev-dependencies] entry in every manifest must be
# a `{ path = ... }` / `.workspace = true` dependency. A crates-io dep
# looks like `foo = "1.2"` or `foo = { version = "1.2", ... }`; keys that
# legitimately carry bare version strings are excluded.
bad=$(grep -rn --include=Cargo.toml -E '^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*("[^"]*"|\{[^}]*version[[:space:]]*=)' . \
      --exclude-dir=target \
      | grep -vE '(^|/)Cargo\.toml:[0-9]+:[[:space:]]*(version|edition|license|description|name|resolver|harness)[[:space:]]*=' \
      | grep -vE 'path[[:space:]]*=' || true)
if [ -n "$bad" ]; then
    echo "non-path dependencies found:"
    echo "$bad"
    exit 1
fi
# Belt and braces: cargo's own view must agree (exactly the workspace
# members, nothing fetched).
if command -v python3 >/dev/null 2>&1; then
    cargo metadata --format-version 1 --offline \
        | python3 -c '
import json, sys
meta = json.load(sys.stdin)
external = [p["name"] for p in meta["packages"] if p["source"] is not None]
if external:
    sys.exit("external packages in cargo metadata: %s" % ", ".join(sorted(set(external))))
'
else
    echo "(python3 not found; skipping cargo-metadata cross-check)"
fi
echo "ok: all dependencies are in-tree path dependencies"

echo "== release build (all targets) =="
cargo build --workspace --release --all-targets --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== crypto bench smoke (fast-kernel equivalence + speedup) =="
# One quick pass of the E13 throughput harness: proves the fused-table
# DES kernel bit-exact against the reference (FIPS 81 + differential
# trials), fails if the fast kernel is not faster, and regenerates
# BENCH_crypto.json.
KDC_THROUGHPUT_QUICK=1 cargo run --release --offline -p bench --bin table_kdc_throughput
grep -q '"equivalence": "pass"' BENCH_crypto.json \
    || { echo "BENCH_crypto.json missing equivalence pass"; exit 1; }

echo "== chaos soak (pinned fault seeds) =="
# Liveness + safety under a faulted network: ≥5 pinned seeds at ≥10%
# drop+duplicate+reorder, master-KDC crash mid-campaign, E1 verdicts
# bit-identical under faults, replay caught across server restart.
cargo test -q -p attacks --test chaos_soak --release --offline

echo "verify: OK"
