#!/usr/bin/env bash
# Tier-1 verification, fully offline:
#   1. static invariants — krb-lint (secrecy, constant-time, determinism,
#      panic hygiene, hermeticity) with a justified-suppression baseline
#   2. release build of every target (including benches)
#   3. clippy, warnings denied
#   4. full test suite
#
# Usage: scripts/verify.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== static invariants (krb-lint) =="
# Rules S001-S003 (secrecy), C001 (constant-time compare), D001/D002
# (determinism), P001/P002 (panic hygiene), plus the flow-aware pass
# (S005 cross-function secret taint, D003 laundered clock reads, P003
# truncating length casts, A001 hot-path allocations, E001 metric-name
# drift against DESIGN.md), H001 (hermeticity — this
# subsumes the grep-based dependency guard verify.sh carried since PR 1:
# a crates-io or git dependency is now reported as an H001 finding with
# the manifest file:line and the offending entry named).
# A non-path dependency can break cargo's own resolution before the
# lint gets to run (offline, nothing to fetch) — in that case fall back
# to an already-built krb-lint binary so the failure still names the
# offending manifest line as an H001 finding.
if ! cargo run -q --offline -p krb-lint 2>lint_stderr.tmp; then
    cat lint_stderr.tmp; rm -f lint_stderr.tmp
    for bin in target/debug/krb-lint target/release/krb-lint; do
        if [ -x "$bin" ]; then
            "$bin" --root . || true
            break
        fi
    done
    echo "krb-lint gate failed — fix the findings above, or add a"
    echo "justified [[allow]] entry to lint-baseline.toml (H001 findings"
    echo "mean a non-path dependency: the build must stay hermetic)"
    exit 1
fi
rm -f lint_stderr.tmp
# Belt and braces: cargo's own view must agree (exactly the workspace
# members, nothing fetched).
if command -v python3 >/dev/null 2>&1; then
    cargo metadata --format-version 1 --offline \
        | python3 -c '
import json, sys
meta = json.load(sys.stdin)
external = [p["name"] for p in meta["packages"] if p["source"] is not None]
if external:
    sys.exit("external packages in cargo metadata: %s" % ", ".join(sorted(set(external))))
'
else
    echo "(python3 not found; skipping cargo-metadata cross-check)"
fi
echo "ok: all dependencies are in-tree path dependencies"

echo "== release build (all targets) =="
cargo build --workspace --release --all-targets --offline

echo "== clippy (warnings denied) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tests =="
cargo test -q --workspace --offline

echo "== crypto bench smoke (fast-kernel equivalence + speedup) =="
# One quick pass of the E13 throughput harness: proves the fused-table
# DES kernel bit-exact against the reference (FIPS 81 + differential
# trials), fails if the fast kernel is not faster, and regenerates
# BENCH_crypto.json.
KDC_THROUGHPUT_QUICK=1 cargo run --release --offline -p bench --bin table_kdc_throughput
grep -q '"equivalence": "pass"' BENCH_crypto.json \
    || { echo "BENCH_crypto.json missing equivalence pass"; exit 1; }

echo "== trace goldens (determinism + narration) =="
# The observability layer must be purely observational: the pinned A1/V4
# JSONL trace matches its golden byte-for-byte, same-seed runs are
# byte-identical with and without a fault plan, the narrated trace reads
# in paper notation, and the metrics snapshot counts the attack.
cargo test -q -p attacks --test trace_golden --release --offline
# And the interactive narrator drives end-to-end. (Captured, not piped:
# grep -q closing the pipe early would trip pipefail.)
narration="$(scripts/trace.sh --narrate replay)"
echo "$narration" | grep -q 'c -> kdc: AS-REQ' \
    || { echo "trace.sh narration missing protocol steps"; exit 1; }

echo "== fuzz smoke (fixed seed, deterministic, panic-free) =="
# 10k mutated frames against every codec decoder: each input must yield
# Ok or a typed error (a panic fails the run), and two same-seed runs
# must be byte-identical.
scripts/fuzz.sh

echo "== gateway overload scenarios (E17) =="
# The four seeded abuse campaigns against the admission-controlled KDC
# front-end: flash crowd, preauth storm, misbehaving herd, crash-restart.
# Each is byte-replayable from its seed; the run regenerates
# BENCH_gateway.json (goodput, shed rate, p99 latency, admission ratios).
cargo run --release --offline -p bench --bin table_gateway_overload
grep -q '"preauth_storm.legit_ok"' BENCH_gateway.json \
    || { echo "BENCH_gateway.json missing preauth-storm scores"; exit 1; }

echo "== cluster scale smoke (E18, quick mode, byte-identical JSON) =="
# The sharded-cluster bench in quick mode: provisions the population,
# gates the batched 4-shard aggregate at >=2x the single-KDC baselines,
# and survives a shard-primary crash mid-workload. Runs twice: the
# deterministic report must be byte-identical across same-seed runs.
CLUSTER_SCALE_QUICK=1 cargo run --release --offline -p bench --bin table_cluster_scale
cp BENCH_cluster.json BENCH_cluster.json.run1
CLUSTER_SCALE_QUICK=1 cargo run --release --offline -p bench --bin table_cluster_scale
diff BENCH_cluster.json.run1 BENCH_cluster.json \
    || { echo "BENCH_cluster.json not byte-identical across same-seed runs"; exit 1; }
rm -f BENCH_cluster.json.run1
grep -q '"speedup_gate": "pass"' BENCH_cluster.json \
    || { echo "BENCH_cluster.json missing speedup gate pass"; exit 1; }

echo "== lint coverage (E19, byte-identical JSON) =="
# The flow-aware lint over the whole tree, twice: BENCH_lint.json holds
# only deterministic counts (findings per rule, functions, call edges,
# taint paths — the wall clock goes to stdout only), so two runs over
# the same tree must produce byte-identical reports, and the tree must
# be clean (every finding fixed or baselined with a justification).
cargo run --release --offline -p krb-lint --bin table_lint_coverage
cp BENCH_lint.json BENCH_lint.json.run1
cargo run --release --offline -p krb-lint --bin table_lint_coverage
diff BENCH_lint.json.run1 BENCH_lint.json \
    || { echo "BENCH_lint.json not byte-identical across same-tree runs"; exit 1; }
rm -f BENCH_lint.json.run1
grep -q '"clean": true' BENCH_lint.json \
    || { echo "BENCH_lint.json reports active findings"; exit 1; }

echo "== intrusion detection (E20, gates + byte-identical JSON) =="
# The default krb-ids rule set over the full attack matrix, stealth
# variants, benign and fault-heavy workloads. Twice: detection is a
# pure function of the deterministic wire, so BENCH_ids.json must be
# byte-identical across same-seed runs; then both gates (every designed
# detector pair fired with >=90% on loud variants; zero alerts on the
# zero-fault benign workload). The pinned A1/V4 alert-stream golden
# rides with the test suite (alert_golden).
cargo run --release --offline -p bench --bin table_ids_matrix
cp BENCH_ids.json BENCH_ids.json.run1
cargo run --release --offline -p bench --bin table_ids_matrix
diff BENCH_ids.json.run1 BENCH_ids.json \
    || { echo "BENCH_ids.json not byte-identical across same-seed runs"; exit 1; }
rm -f BENCH_ids.json.run1
grep -q '"detection_gate": "pass"' BENCH_ids.json \
    || { echo "BENCH_ids.json missing detection gate pass"; exit 1; }
grep -q '"fp_gate": "pass"' BENCH_ids.json \
    || { echo "BENCH_ids.json missing false-positive gate pass"; exit 1; }

echo "== chaos soak (pinned fault seeds) =="
# Liveness + safety under a faulted network: ≥5 pinned seeds at ≥10%
# drop+duplicate+reorder, master-KDC crash mid-campaign, E1 verdicts
# bit-identical under faults, replay caught across server restart.
cargo test -q -p attacks --test chaos_soak --release --offline

echo "verify: OK"
