#!/usr/bin/env bash
# E20 smoke: the trace-driven intrusion-detection matrix.
#
#   scripts/ids.sh
#
# Runs the full attack × detector matrix (every E1 attack, the
# loud/stealthy variants, the zero-fault benign workload, the E12
# chaos soak and E17 overload scenarios) through the default krb-ids
# rule set, regenerating BENCH_ids.json, then checks both gates:
#
#   detection_gate  every designed detector pair fired, with >=90%
#                   detection on the loud variants
#   fp_gate         zero alerts on the zero-fault benign workload
#
# The bin exits non-zero itself when a gate fails; the greps here make
# the contract visible even if its exit handling regresses.

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --offline --release -p bench --bin table_ids_matrix

grep -q '"detection_gate": "pass"' BENCH_ids.json \
    || { echo "BENCH_ids.json: detection gate failed"; exit 1; }
grep -q '"fp_gate": "pass"' BENCH_ids.json \
    || { echo "BENCH_ids.json: false-positive gate failed"; exit 1; }
echo "ids: OK (detection + false-positive gates pass)"
