#!/usr/bin/env bash
# krb-lint driver.
#
#   scripts/lint.sh            gate mode: exit 0 iff zero active findings
#                              and zero stale baseline entries
#   scripts/lint.sh --report   also print the rule × crate violation
#                              table (the numbers EXPERIMENTS.md E14
#                              records) and the flow-pass coverage
#                              counters — functions analysed, call
#                              edges resolved, taint paths walked (E19;
#                              `cargo run -p krb-lint --bin
#                              table_lint_coverage` writes the same
#                              numbers to BENCH_lint.json)
#
# Suppressions live in lint-baseline.toml; every entry needs a
# justification, and entries matching no current finding fail the run,
# so the baseline can only shrink.

set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --offline -p krb-lint -- "$@"
