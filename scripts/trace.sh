#!/usr/bin/env bash
# Narrated attack traces in the paper's step notation.
#
#   scripts/trace.sh --narrate <attack> [config] [--alerts]
#
#   <attack>  an attack id (A1..A14) or a name substring ("replay",
#             "spoof", "password", ...)
#   [config]  protocol preset: v4 (default), v5-draft3, hardened
#   --alerts  attach the default krb-ids rule set to the run and
#             interleave its findings (`!! IDS [detector] ...` lines,
#             timestamped at their evidence) with the protocol steps
#
# Example:
#   scripts/trace.sh --narrate replay          # A1 against V4
#   scripts/trace.sh --narrate A1 hardened     # same attack, defended
#   scripts/trace.sh --narrate A1 v4 --alerts  # with the IDS watching
#
# The run is fully deterministic (seed pinned to the E1 golden cell):
# the narration for `--narrate replay` is exactly the trace the
# golden-trace tests lock down, rendered through the paper lens
# (c / kdc / s actors, {...}K message notation, adversary moves
# interleaved), with the per-principal metrics snapshot appended.

set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --offline --release -p bench --bin trace_narrate -- "$@"
