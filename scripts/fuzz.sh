#!/usr/bin/env bash
# Deterministic fuzz smoke: run the codec fuzzer twice with the same
# fixed seed and require (1) zero decoder panics and (2) byte-identical
# reports — the determinism contract the krb-fuzz crate is built on.
#
# Usage: scripts/fuzz.sh [--seed <dec|0xhex>] [--iters <n>]
#        (defaults: seed 0x5eed, 10000 iterations)

set -euo pipefail
cd "$(dirname "$0")/.."

SEED="0x5eed"
ITERS="10000"
while [ $# -gt 0 ]; do
    case "$1" in
        --seed)  SEED="$2";  shift 2 ;;
        --iters) ITERS="$2"; shift 2 ;;
        *) echo "usage: scripts/fuzz.sh [--seed <dec|0xhex>] [--iters <n>]" >&2; exit 2 ;;
    esac
done

cargo build -q --release --offline -p krb-fuzz --bin fuzz_codec

run1="$(target/release/fuzz_codec --seed "$SEED" --iters "$ITERS")"
run2="$(target/release/fuzz_codec --seed "$SEED" --iters "$ITERS")"

if [ "$run1" != "$run2" ]; then
    echo "FAIL: two same-seed fuzz runs diverged (determinism broken)" >&2
    diff <(echo "$run1") <(echo "$run2") | head -20 >&2 || true
    exit 1
fi

echo "$run1" | head -2
echo "$run1" | grep -q ' panics=0 ' \
    || { echo "FAIL: fuzzer caught decoder panics"; echo "$run1"; exit 1; }
echo "fuzz: OK ($ITERS inputs, seed $SEED, deterministic, panic-free)"
