//! The paper's hardware proposals, deployed end-to-end: an encryption
//! unit whose keys never reach host memory, backed by a networked
//! keystore reached over a kerberized KRB_PRIV session, plus the random
//! number service and handheld-authenticator login.

use hardware::keystore::KeyStoreLogic;
use hardware::randsvc::RandomServiceLogic;
use hardware::{EncryptionUnit, HandheldAuthenticator};
use kerberos::appserver::{connect_app, AppServer};
use kerberos::client::{get_service_ticket, login, LoginInput, TgsParams};
use kerberos::testbed::{standard_campus, APP_PORT};
use kerberos::ProtocolConfig;
use krb_crypto::des::DesKey;
use krb_crypto::key::KeyPurpose;
use krb_crypto::rng::{Drbg, RandomSource};
use simnet::{Addr, Endpoint, Host, Network, SimDuration};

/// Adds a kerberized keystore service to the campus.
fn add_keystore(net: &mut Network, realm: &kerberos::testbed::DeployedRealm, seed: u64) -> Endpoint {
    let config = realm.config.clone();
    let mut rng = Drbg::new(seed);
    let key = rng.gen_des_key();
    // Register the service principal in the KDC.
    let principal = realm.with_kdc(net, |kdc| kdc.db.add_service("keystore", "vaulthost", key));
    let addr = Addr::new(10, 0, 2, 1);
    let mut host = Host::new("vaulthost", vec![addr]).multi_user();
    host.bind(
        APP_PORT,
        Box::new(AppServer::new(config, principal, key, Box::new(KeyStoreLogic::new()), seed ^ 1)),
    );
    net.add_host(host);
    Endpoint::new(addr, APP_PORT)
}

#[test]
fn unit_plus_keystore_full_cycle() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 77);
    let keystore_ep = add_keystore(&mut net, &realm, 78);
    let mut rng = Drbg::new(79);

    // A server host's encryption unit holds its service key and a
    // keystore channel key. Nothing below ever surfaces key bytes.
    let mut unit = EncryptionUnit::new(config.clone(), 80);
    let files_key = realm.service_keys["files"];
    let _files_slot = unit.load_key(files_key, KeyPurpose::Service);
    let channel = unit.gen_key(KeyPurpose::KeyStore);
    let session_slot = unit.gen_key(KeyPurpose::AppSession);

    // Export a sealed blob and park it in the keystore over a
    // kerberized KRB_PRIV session (as the paper requires).
    let blob = unit.export_sealed_blob(session_slot, channel).expect("export");
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .expect("login");
    let ks_principal = kerberos::Principal::service("keystore", "vaulthost", &realm.name);
    let st = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &ks_principal,
        TgsParams::default(),
        &mut rng,
    )
    .expect("keystore ticket");
    let mut conn =
        connect_app(&mut net, &config, realm.user_ep("pat"), keystore_ep, &st, &mut rng).expect("session");

    let mut cmd = b"STORE session-backup ".to_vec();
    cmd.extend_from_slice(&blob);
    assert_eq!(conn.request(&mut net, &cmd, &mut rng).unwrap(), b"STORED");

    // Fetch it back and import into a fresh unit (e.g. after reboot:
    // "keys be kept in volatile memory, and downloaded from a secure
    // keystore on request").
    let fetched = conn.request(&mut net, b"FETCH session-backup", &mut rng).unwrap();
    assert!(fetched.starts_with(b"BLOB "));
    let blob_back = &fetched[5..];
    assert_eq!(blob_back, &blob[..]);

    let restored = unit.import_sealed_blob(blob_back, channel).expect("import");
    // The restored slot seals/opens interchangeably with the original.
    let ct = unit.seal_data(session_slot, 5, b"before reboot").unwrap();
    assert_eq!(unit.open_data(restored, 5, &ct).unwrap(), b"before reboot");

    // The wiretap saw the blob only inside KRB_PRIV ciphertext — the
    // raw blob bytes never crossed in the clear.
    let leaked = net.traffic_log().iter().any(|r| {
        r.dgram
            .payload
            .windows(blob.len().min(16))
            .any(|w| w == &blob[..blob.len().min(16)])
    });
    assert!(!leaked, "sealed blob visible on the wire");
}

#[test]
fn keystore_refuses_plain_access() {
    // The paper: "Only encrypted transfer (KRB_PRIV) should be
    // employed." The hardened deployment refuses plaintext commands.
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 81);
    let keystore_ep = add_keystore(&mut net, &realm, 82);
    let r = net.inject(simnet::Datagram {
        src: Endpoint::new(Addr::new(10, 0, 0, 1), 5555),
        dst: keystore_ep,
        payload: kerberos::messages::frame(kerberos::messages::WireKind::AppData, b"FETCH anything".to_vec()).into(),
    });
    let reply = r.unwrap().unwrap();
    // An error, not a blob.
    assert_eq!(reply.first(), Some(&(kerberos::messages::WireKind::Err as u8)));
}

#[test]
fn random_service_issues_keys_over_the_network() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 83);
    let mut rng = Drbg::new(84);

    // Deploy the random service kerberized.
    let key = rng.gen_des_key();
    let principal = realm.with_kdc(&mut net, |kdc| kdc.db.add_service("random", "rnghost", key));
    let addr = Addr::new(10, 0, 2, 2);
    let mut host = Host::new("rnghost", vec![addr]).multi_user();
    host.bind(
        APP_PORT,
        Box::new(AppServer::new(config.clone(), principal.clone(), key, Box::new(RandomServiceLogic::new(85)), 86)),
    );
    net.add_host(host);
    let rng_ep = Endpoint::new(addr, APP_PORT);

    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();
    let st = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &principal,
        TgsParams::default(),
        &mut rng,
    )
    .unwrap();
    let mut conn = connect_app(&mut net, &config, realm.user_ep("pat"), rng_ep, &st, &mut rng).unwrap();
    let key_bytes = conn.request(&mut net, b"KEY", &mut rng).unwrap();
    let k = DesKey::from_bytes(key_bytes.try_into().expect("8 bytes"));
    assert!(k.has_odd_parity() && !k.is_weak());
}

#[test]
fn handheld_login_over_the_network_with_real_device() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 87);
    let mut rng = Drbg::new(88);

    let mut device = HandheldAuthenticator::enroll(realm.user("pat"), "correct-horse-battery");
    let cell = std::cell::RefCell::new(&mut device);
    let answer = |r: u64| cell.borrow_mut().respond(r);
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Handheld(&answer),
        &mut rng,
    )
    .expect("device login");
    assert_eq!(tgt.client, realm.user("pat"));
    drop(tgt);
    assert_eq!(device.uses, 1);
}

/// The paper's preferred alternative to treating clients as services:
/// "having clients register separate instances as services, with truly
/// random keys. Keys could be supplied to the client by the keystore."
#[test]
fn per_instance_keys_from_random_service_and_keystore() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 91);
    let keystore_ep = add_keystore(&mut net, &realm, 92);
    let mut rng = Drbg::new(93);

    // A truly random key for pat's encrypted-mail instance (pat.email),
    // as the random service would mint it.
    let mut rsl = hardware::randsvc::RandomServiceLogic::new(94);
    let key_bytes =
        kerberos::appserver::AppLogic::on_command(&mut rsl, &realm.user("pat"), b"KEY");
    let instance_key = DesKey::from_bytes(key_bytes.clone().try_into().expect("8 bytes"));

    // Register pat.email as a service principal with that key.
    let pat_email = realm.with_kdc(&mut net, |kdc| {
        kdc.db.add_service("pat", "email", instance_key)
    });
    assert_eq!(pat_email, kerberos::Principal::user_instance("pat", "email", &realm.name));

    // Park the key in the keystore over KRB_PRIV for later retrieval.
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();
    let ks_principal = kerberos::Principal::service("keystore", "vaulthost", &realm.name);
    let st = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &ks_principal,
        TgsParams::default(),
        &mut rng,
    )
    .unwrap();
    let mut conn =
        connect_app(&mut net, &config, realm.user_ep("pat"), keystore_ep, &st, &mut rng).unwrap();
    let mut cmd = b"STORE pat.email-key ".to_vec();
    cmd.extend_from_slice(&key_bytes);
    assert_eq!(conn.request(&mut net, &cmd, &mut rng).unwrap(), b"STORED");

    // Another user can now obtain a ticket TO pat.email (user-to-user
    // mail encryption) without pat re-entering a password — the whole
    // point of the instance scheme.
    let sam_tgt = login(
        &mut net,
        &config,
        realm.user_ep("sam"),
        realm.kdc_ep,
        &realm.user("sam"),
        LoginInput::Password("wombat7"),
        &mut rng,
    )
    .unwrap();
    let mail_ticket = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("sam"),
        realm.kdc_ep,
        &sam_tgt,
        &pat_email,
        TgsParams::default(),
        &mut rng,
    )
    .expect("ticket for pat's mail instance");
    assert_eq!(mail_ticket.service, pat_email);
}

/// KRB_SAFE end-to-end over the network: integrity-protected commands
/// with data in the clear.
#[test]
fn krb_safe_commands_over_the_network() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 95);
    let mut rng = Drbg::new(96);
    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();
    let st = get_service_ticket(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        &realm.service("echo"),
        TgsParams::default(),
        &mut rng,
    )
    .unwrap();
    let mut conn =
        connect_app(&mut net, &config, realm.user_ep("pat"), realm.service_ep("echo"), &st, &mut rng)
            .unwrap();
    let reply = conn.request_safe(&mut net, &config, b"integrity-only command").unwrap();
    assert!(reply.ends_with(b"integrity-only command"));

    // The command travelled in the clear (visible to the wiretap) —
    // KRB_SAFE protects integrity, not confidentiality.
    let seen = net
        .traffic_log()
        .iter()
        .any(|r| r.dgram.payload.windows(22).any(|w| w == b"integrity-only command"));
    assert!(seen, "KRB_SAFE data should be visible on the wire");
}
