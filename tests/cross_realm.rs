//! Inter-realm authentication end-to-end: hierarchical realms, static
//! routing, transited-path recording, and the trust problems the paper
//! describes.

use kerberos::appserver::connect_app;
use kerberos::client::{login, LoginInput};
use kerberos::crossrealm::{cross_realm_ticket, RealmTopology, TrustPolicy};
use kerberos::kdc::Kdc;
use kerberos::testbed::deploy_realm;
use kerberos::ticket::Ticket;
use kerberos::{KrbError, Principal, ProtocolConfig};
use krb_crypto::rng::{Drbg, RandomSource};
use simnet::{Network, SimDuration};

/// Deploys a chain of realms LEAF -> MID -> ROOT with shared inter-realm
/// keys along the chain, users in LEAF, and services everywhere.
fn deploy_chain(config: &ProtocolConfig) -> (Network, Vec<kerberos::testbed::DeployedRealm>, RealmTopology) {
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let mut rng = Drbg::new(0xc4a1);

    let leaf = deploy_realm(&mut net, "LEAF", 1, config, &[("pat", "pw-pat")], &["echo"], 11);
    let mid = deploy_realm(&mut net, "MID", 2, config, &[], &["echo"], 12);
    let root = deploy_realm(&mut net, "ROOT", 3, config, &[], &["echo", "files"], 13);

    // Install pairwise inter-realm keys (LEAF<->MID, MID<->ROOT).
    let k_leaf_mid = rng.gen_des_key();
    let k_mid_root = rng.gen_des_key();
    let add_cross = |net: &mut Network, realm: &kerberos::testbed::DeployedRealm, remote: &str, key| {
        realm.with_kdc(net, |kdc: &mut Kdc| {
            kdc.db.add_cross_realm(remote, key);
        });
    };
    add_cross(&mut net, &leaf, "MID", k_leaf_mid);
    add_cross(&mut net, &mid, "LEAF", k_leaf_mid);
    add_cross(&mut net, &mid, "ROOT", k_mid_root);
    add_cross(&mut net, &root, "MID", k_mid_root);

    let mut topo = RealmTopology::new();
    topo.add_realm("LEAF", leaf.kdc_ep);
    topo.add_realm("MID", mid.kdc_ep);
    topo.add_realm("ROOT", root.kdc_ep);
    topo.add_route("LEAF", "ROOT", "MID");
    topo.add_route("MID", "ROOT", "ROOT");
    topo.add_route("LEAF", "MID", "MID");

    (net, vec![leaf, mid, root], topo)
}

fn login_pat(
    net: &mut Network,
    config: &ProtocolConfig,
    leaf: &kerberos::testbed::DeployedRealm,
    rng: &mut dyn RandomSource,
) -> kerberos::Credential {
    login(
        net,
        config,
        leaf.user_ep("pat"),
        leaf.kdc_ep,
        &leaf.user("pat"),
        LoginInput::Password("pw-pat"),
        rng,
    )
    .expect("home login")
}

#[test]
fn two_hop_cross_realm_auth_works() {
    for config in [ProtocolConfig::v5_draft3(), ProtocolConfig::hardened()] {
        let (mut net, realms, topo) = deploy_chain(&config);
        let (leaf, root) = (&realms[0], &realms[2]);
        let mut rng = Drbg::new(21);
        let tgt = login_pat(&mut net, &config, leaf, &mut rng);

        let remote_service = root.service("files");
        let (cred, path) = cross_realm_ticket(
            &mut net,
            &config,
            &topo,
            leaf.user_ep("pat"),
            &tgt,
            &remote_service,
            &mut rng,
        )
        .expect("cross-realm chain");
        assert_eq!(path, vec!["LEAF", "MID", "ROOT"]);
        assert_eq!(cred.client, leaf.user("pat"));
        assert_eq!(cred.service, remote_service);

        // The credential actually works against the remote server.
        let mut conn = connect_app(
            &mut net,
            &config,
            leaf.user_ep("pat"),
            root.service_ep("files"),
            &cred,
            &mut rng,
        )
        .expect("remote session");
        let reply = conn.request(&mut net, b"PUT remote.txt via two realms", &mut rng).unwrap();
        assert_eq!(reply, b"OK", "config {}", config.name);
    }
}

#[test]
fn transited_path_is_recorded_in_the_ticket() {
    let config = ProtocolConfig::v5_draft3();
    let (mut net, realms, topo) = deploy_chain(&config);
    let (leaf, root) = (&realms[0], &realms[2]);
    let mut rng = Drbg::new(22);
    let tgt = login_pat(&mut net, &config, leaf, &mut rng);
    let (cred, _) = cross_realm_ticket(
        &mut net,
        &config,
        &topo,
        leaf.user_ep("pat"),
        &tgt,
        &root.service("files"),
        &mut rng,
    )
    .unwrap();

    // Unseal server-side (we know the key from the deployment) and
    // inspect the transited list.
    let files_key = root.service_keys["files"];
    let t = Ticket::unseal(config.codec, config.ticket_layer, &files_key, &cred.sealed_ticket).unwrap();
    assert!(
        t.transited.contains(&"LEAF".to_string()) || t.transited.contains(&"MID".to_string()),
        "transited = {:?}",
        t.transited
    );

    // A trust policy distrusting MID rejects this path; one distrusting
    // an uninvolved realm accepts it.
    assert!(TrustPolicy::distrusting(&["MID"]).evaluate(&t.transited).is_err());
    assert!(TrustPolicy::distrusting(&["EVIL"]).evaluate(&t.transited).is_ok());
}

#[test]
fn missing_route_blocks_the_walk() {
    let config = ProtocolConfig::v5_draft3();
    let (mut net, realms, mut topo) = deploy_chain(&config);
    let (leaf, root) = (&realms[0], &realms[2]);
    // Remove the static route: the paper's "no scalable mechanism to
    // learn of grandchildren" problem.
    topo.routes.get_mut("LEAF").unwrap().remove("ROOT");
    let mut rng = Drbg::new(23);
    let tgt = login_pat(&mut net, &config, leaf, &mut rng);
    let err = cross_realm_ticket(
        &mut net,
        &config,
        &topo,
        leaf.user_ep("pat"),
        &tgt,
        &root.service("files"),
        &mut rng,
    )
    .unwrap_err();
    assert!(matches!(err, KrbError::RealmPathRejected(_)));
}

#[test]
fn kdc_without_interrealm_key_refuses() {
    let config = ProtocolConfig::v5_draft3();
    let (mut net, realms, mut topo) = deploy_chain(&config);
    let (leaf, root) = (&realms[0], &realms[2]);
    // Lie in the routing table: claim LEAF can reach ROOT directly.
    topo.routes.get_mut("LEAF").unwrap().insert("ROOT".into(), "ROOT".into());
    let mut rng = Drbg::new(24);
    let tgt = login_pat(&mut net, &config, leaf, &mut rng);
    let err = cross_realm_ticket(
        &mut net,
        &config,
        &topo,
        leaf.user_ep("pat"),
        &tgt,
        &root.service("files"),
        &mut rng,
    )
    .unwrap_err();
    // The LEAF KDC has no key for ROOT: the request dies at the first
    // hop.
    assert!(matches!(err, KrbError::Remote(_)), "got {err}");
}

#[test]
fn enc_tkt_in_skey_cannot_cross_realms() {
    // "ENC-TKT-IN-SKEY and REUSE-KEY require the ticket-granting server
    // to decrypt a ticket. It cannot do this if the ticket had been
    // issued by another realm."
    let mut config = ProtocolConfig::v5_draft3();
    config.allow_enc_tkt_in_skey = true;
    let (mut net, realms, topo) = deploy_chain(&config);
    let (leaf, mid) = (&realms[0], &realms[1]);
    let mut rng = Drbg::new(25);
    let tgt = login_pat(&mut net, &config, leaf, &mut rng);

    // Get a MID TGT (one hop).
    let (mid_tgt, _) = cross_realm_ticket(
        &mut net,
        &config,
        &topo,
        leaf.user_ep("pat"),
        &tgt,
        &Principal::tgs("MID"),
        &mut rng,
    )
    .unwrap_or_else(|_| {
        // Walking to the TGS principal itself: do it manually.
        let cred = kerberos::client::get_service_ticket(
            &mut net,
            &config,
            leaf.user_ep("pat"),
            leaf.kdc_ep,
            &tgt,
            &Principal::tgs("MID"),
            kerberos::TgsParams::default(),
            &mut rng,
        )
        .expect("one-hop TGT");
        (cred, vec![])
    });

    // Ask MID's TGS for an ENC-TKT-IN-SKEY ticket using the LEAF TGT
    // (sealed under LEAF's key, which MID cannot unseal) as the
    // additional ticket.
    let err = kerberos::client::get_service_ticket(
        &mut net,
        &config,
        leaf.user_ep("pat"),
        mid.kdc_ep,
        &mid_tgt,
        &mid.service("echo"),
        kerberos::TgsParams {
            options: kerberos::flags::KdcOptions::empty()
                .with(kerberos::flags::KdcOptions::ENC_TKT_IN_SKEY),
            additional_ticket: Some(tgt.sealed_ticket.clone()),
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap_err();
    assert!(matches!(err, KrbError::Remote(_)));
}

#[test]
fn direct_peering_also_works() {
    // Tandem (non-hierarchical) links are permitted: LEAF <-> ROOT
    // directly.
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let mut rng = Drbg::new(26);

    let a = deploy_realm(&mut net, "ALPHA", 4, &config, &[("pat", "pw")], &[], 31);
    let b = deploy_realm(&mut net, "BETA", 5, &config, &[], &["echo"], 32);
    let k = rng.gen_des_key();
    a.with_kdc(&mut net, |kdc: &mut Kdc| {
        kdc.db.add_cross_realm("BETA", k);
    });
    b.with_kdc(&mut net, |kdc: &mut Kdc| {
        kdc.db.add_cross_realm("ALPHA", k);
    });
    let mut topo = RealmTopology::new();
    topo.add_realm("ALPHA", a.kdc_ep);
    topo.add_realm("BETA", b.kdc_ep);
    topo.add_route("ALPHA", "BETA", "BETA");

    let tgt = login(&mut net, &config, a.user_ep("pat"), a.kdc_ep, &a.user("pat"), LoginInput::Password("pw"), &mut rng)
        .unwrap();
    let (cred, path) =
        cross_realm_ticket(&mut net, &config, &topo, a.user_ep("pat"), &tgt, &b.service("echo"), &mut rng).unwrap();
    assert_eq!(path, vec!["ALPHA", "BETA"]);
    let mut conn =
        connect_app(&mut net, &config, a.user_ep("pat"), b.service_ep("echo"), &cred, &mut rng).unwrap();
    let reply = conn.request(&mut net, b"hello across realms", &mut rng).unwrap();
    assert!(reply.ends_with(b"hello across realms"));
}
