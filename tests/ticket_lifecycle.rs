//! Ticket renewal and forwarding: the "Scope of Tickets" section made
//! executable, including the cascading-trust gap the paper uses to argue
//! that "ticket-forwarding be deleted".

use kerberos::appserver::connect_app;
use kerberos::client::{forward_tgt, get_service_ticket, login, renew_tgt, LoginInput, TgsParams};
use kerberos::flags::{KdcOptions, TicketFlags};
use kerberos::testbed::standard_campus;
use kerberos::ticket::Ticket;
use kerberos::{Principal, ProtocolConfig};
use krb_crypto::rng::Drbg;
use simnet::{Addr, Endpoint, Host, Network, SimDuration};

fn setup(config: &ProtocolConfig, seed: u64) -> (Network, kerberos::testbed::DeployedRealm, Drbg) {
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, config, seed);
    (net, realm, Drbg::new(seed ^ 0x11fe))
}

#[test]
fn renewal_extends_the_validity_window() {
    for config in [ProtocolConfig::v5_draft3(), ProtocolConfig::hardened()] {
        let (mut net, realm, mut rng) = setup(&config, 61);
        let tgt = login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &realm.user("pat"),
            LoginInput::Password("correct-horse-battery"),
            &mut rng,
        )
        .unwrap();

        // Six hours later, renew (still inside the 8h lifetime).
        net.advance(SimDuration::from_secs(6 * 3600));
        let renewed = renew_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, &mut rng)
            .expect("renewal");
        assert!(renewed.end_time > tgt.end_time, "config {}", config.name);
        // Renewal keeps the session key (it reissues the same ticket).
        assert_eq!(renewed.session_key, tgt.session_key);

        // The renewed TGT still works for service tickets after the
        // original would have expired.
        net.advance(SimDuration::from_secs(3 * 3600));
        let st = get_service_ticket(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &renewed,
            &realm.service("echo"),
            TgsParams::default(),
            &mut rng,
        )
        .expect("ticket from renewed TGT");
        // And the stale original does not.
        assert!(get_service_ticket(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &tgt,
            &realm.service("echo"),
            TgsParams::default(),
            &mut rng,
        )
        .is_err());
        drop(st);
    }
}

#[test]
fn renewal_of_nonrenewable_ticket_refused() {
    // Build a deployment whose KDC grants only what is asked: request a
    // TGT without the RENEWABLE option by crafting the AS request
    // directly.
    use kerberos::messages::{AsRep, AsReq, EncKdcRepPart};
    let config = ProtocolConfig::v5_draft3();
    let (mut net, realm, mut rng) = setup(&config, 62);
    use krb_crypto::rng::RandomSource;
    let nonce = rng.next_u64();
    let req = AsReq {
        client: realm.user("pat"),
        service: Principal::tgs(&realm.name),
        nonce,
        lifetime_us: config.ticket_lifetime_us,
        addr: realm.user_ep("pat").addr.0,
        options: KdcOptions::empty(), // Neither forwardable nor renewable.
        padata: vec![],
    };
    let reply = net.rpc(realm.user_ep("pat"), realm.kdc_ep, req.encode(config.codec)).unwrap();
    let rep = AsRep::decode(config.codec, &reply).unwrap();
    let kc = krb_crypto::s2k::string_to_key_v5("correct-horse-battery", &realm.user("pat").salt());
    let pt = config.ticket_layer.open(&kc, 0, &rep.enc_part).unwrap();
    let part = EncKdcRepPart::decode(config.codec, kerberos::encoding::MsgType::EncAsRepPart, &pt).unwrap();
    let tgt = kerberos::Credential {
        client: realm.user("pat"),
        service: Principal::tgs(&realm.name),
        sealed_ticket: part.ticket,
        session_key: part.session_key,
        end_time: part.end_time,
    };

    let err = renew_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, &mut rng).unwrap_err();
    assert!(err.to_string().contains("not renewable"), "{err}");
}

#[test]
fn forwarding_rebinds_the_address_and_works_from_the_new_host() {
    let config = ProtocolConfig::v5_draft3(); // Address-bound tickets.
    let (mut net, realm, mut rng) = setup(&config, 63);
    // A remote compute server the user wants to work from.
    let remote_addr = Addr::new(10, 0, 3, 3);
    net.add_host(Host::new("compute", vec![remote_addr]).multi_user());
    let remote_ep = Endpoint::new(remote_addr, 1024);

    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();

    // The home TGT is bound to the workstation: used from the compute
    // server, the KDC rejects it (address mismatch).
    assert!(get_service_ticket(
        &mut net,
        &config,
        remote_ep,
        realm.kdc_ep,
        &tgt,
        &realm.service("files"),
        TgsParams::default(),
        &mut rng,
    )
    .is_err());

    // Forward: obtain a TGT bound to the compute server, transfer it
    // (the credential bytes travel by some secure means), use it there.
    let fwd = forward_tgt(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &tgt,
        remote_addr.0,
        &mut rng,
    )
    .expect("forwarded TGT");
    let st = get_service_ticket(
        &mut net,
        &config,
        remote_ep,
        realm.kdc_ep,
        &fwd,
        &realm.service("files"),
        TgsParams::default(),
        &mut rng,
    )
    .expect("service ticket from forwarded TGT");
    let mut conn = connect_app(&mut net, &config, remote_ep, realm.service_ep("files"), &st, &mut rng)
        .expect("session from compute server");
    assert_eq!(conn.request(&mut net, b"PUT from-compute.txt hi", &mut rng).unwrap(), b"OK");
}

#[test]
fn forwarding_nonforwardable_ticket_refused() {
    // Same manual AS request as above, without FORWARDABLE.
    use kerberos::messages::{AsRep, AsReq, EncKdcRepPart};
    let config = ProtocolConfig::v5_draft3();
    let (mut net, realm, mut rng) = setup(&config, 64);
    use krb_crypto::rng::RandomSource;
    let req = AsReq {
        client: realm.user("pat"),
        service: Principal::tgs(&realm.name),
        nonce: rng.next_u64(),
        lifetime_us: config.ticket_lifetime_us,
        addr: realm.user_ep("pat").addr.0,
        options: KdcOptions::empty(),
        padata: vec![],
    };
    let reply = net.rpc(realm.user_ep("pat"), realm.kdc_ep, req.encode(config.codec)).unwrap();
    let rep = AsRep::decode(config.codec, &reply).unwrap();
    let kc = krb_crypto::s2k::string_to_key_v5("correct-horse-battery", &realm.user("pat").salt());
    let pt = config.ticket_layer.open(&kc, 0, &rep.enc_part).unwrap();
    let part = EncKdcRepPart::decode(config.codec, kerberos::encoding::MsgType::EncAsRepPart, &pt).unwrap();
    let tgt = kerberos::Credential {
        client: realm.user("pat"),
        service: Principal::tgs(&realm.name),
        sealed_ticket: part.ticket,
        session_key: part.session_key,
        end_time: part.end_time,
    };
    let err =
        forward_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, 0x0a000303, &mut rng)
            .unwrap_err();
    assert!(err.to_string().contains("not forwardable"), "{err}");
}

/// The cascading-trust gap: "Kerberos has a flag bit to indicate that a
/// ticket was forwarded, but does not include the original source."
#[test]
fn forwarded_tickets_do_not_record_their_origin() {
    let config = ProtocolConfig::v5_draft3();
    let (mut net, realm, mut rng) = setup(&config, 65);
    let insecure_addr = Addr::new(10, 0, 3, 66);
    net.add_host(Host::new("insecure-lab-machine", vec![insecure_addr]).multi_user());
    let trusted_addr = Addr::new(10, 0, 3, 7);
    net.add_host(Host::new("trusted-server", vec![trusted_addr]).multi_user());

    let tgt = login(
        &mut net,
        &config,
        realm.user_ep("pat"),
        realm.kdc_ep,
        &realm.user("pat"),
        LoginInput::Password("correct-horse-battery"),
        &mut rng,
    )
    .unwrap();

    // Chain A: workstation -> trusted-server (one hop).
    let fwd_direct =
        forward_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, trusted_addr.0, &mut rng)
            .unwrap();
    // Chain B: workstation -> insecure-lab-machine -> trusted-server.
    let fwd_via_insecure =
        forward_tgt(&mut net, &config, realm.user_ep("pat"), realm.kdc_ep, &tgt, insecure_addr.0, &mut rng)
            .unwrap();
    let fwd_twice = forward_tgt(
        &mut net,
        &config,
        Endpoint::new(insecure_addr, 1024),
        realm.kdc_ep,
        &fwd_via_insecure,
        trusted_addr.0,
        &mut rng,
    )
    .unwrap();

    // Unseal both (we own the testbed's TGS key path — compare the
    // plaintext tickets a server would see).
    let tgs_key = realm.with_kdc(&mut net, |kdc| kdc.db.lookup(&Principal::tgs(&realm.name)).unwrap().key);
    let t_direct =
        Ticket::unseal(config.codec, config.ticket_layer, &tgs_key, &fwd_direct.sealed_ticket).unwrap();
    let t_laundered =
        Ticket::unseal(config.codec, config.ticket_layer, &tgs_key, &fwd_twice.sealed_ticket).unwrap();

    // Both carry the FORWARDED flag and the same final address class —
    // and NOTHING distinguishing the chain that passed through the
    // insecure host. That is the paper's cascading-trust complaint.
    assert!(t_direct.flags.has(TicketFlags::FORWARDED));
    assert!(t_laundered.flags.has(TicketFlags::FORWARDED));
    assert_eq!(t_direct.addr, t_laundered.addr);
    assert_eq!(t_direct.client, t_laundered.client);
    assert_eq!(t_direct.transited, t_laundered.transited);
}
