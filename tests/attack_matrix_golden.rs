//! Golden test: the attack × configuration matrix rendered by the code
//! must match the table recorded in EXPERIMENTS.md (E1), byte for byte
//! modulo trailing whitespace. If a protocol or attack change shifts any
//! cell, this fails with a diff — update EXPERIMENTS.md deliberately,
//! not accidentally.

use attacks::matrix::{expected, render_table, run_matrix};

const EXPERIMENTS: &str = include_str!("../EXPERIMENTS.md");

/// Extracts the first fenced code block after the `## E1` heading.
fn golden_table() -> Vec<String> {
    let e1 = EXPERIMENTS.split("## E1").nth(1).expect("EXPERIMENTS.md has an '## E1' section");
    let block = e1.split("```").nth(1).expect("E1 section has a fenced code block");
    block.trim_matches('\n').lines().map(|l| l.trim_end().to_string()).collect()
}

#[test]
fn rendered_matrix_matches_experiments_md() {
    // 0xE1 is the seed the published table was generated with
    // (`table_attack_matrix`); the matrix is seed-independent anyway,
    // which matrix_e2e.rs checks separately.
    let rendered = render_table(&run_matrix(0xE1));
    let rendered: Vec<String> = rendered.trim_end().lines().map(|l| l.trim_end().to_string()).collect();
    let golden = golden_table();
    assert_eq!(
        rendered.len(),
        golden.len(),
        "row count differs\nrendered:\n{}\ngolden:\n{}",
        rendered.join("\n"),
        golden.join("\n"),
    );
    for (i, (r, g)) in rendered.iter().zip(&golden).enumerate() {
        assert_eq!(r, g, "line {} differs\nrendered: {r:?}\ngolden:   {g:?}", i + 1);
    }
}

#[test]
fn matrix_outcomes_match_expected_grid() {
    // Same data, structurally: every run cell agrees with the EXPECTED
    // grid (42 cells: 14 attacks × 3 configurations).
    let reports = run_matrix(0xE1);
    assert_eq!(reports.len(), 42);
    for r in &reports {
        let want = expected(r.id, r.config)
            .unwrap_or_else(|| panic!("no expectation for {} × {}", r.id, r.config));
        assert_eq!(
            r.succeeded, want,
            "{} × {}: expected {}, attack reported {}",
            r.id,
            r.config,
            if want { "BREACH" } else { "safe" },
            if r.succeeded { "BREACH" } else { "safe" },
        );
    }
}
