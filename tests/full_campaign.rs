//! The full-campaign test: one deterministic scenario exercising the
//! whole system together — normal operations, an active adversary
//! attempting every attack, and the hardened deployment surviving all of
//! it while the Draft-3 deployment falls.

use attacks::{all_attacks, AttackReport};
use kerberos::appserver::connect_app;
use kerberos::client::{get_service_ticket, login, renew_tgt, LoginInput, TgsParams};
use kerberos::testbed::standard_campus;
use kerberos::ProtocolConfig;
use krb_crypto::rng::Drbg;
use simnet::{Network, SimDuration};

/// A normal multi-user workday: everything must keep working under the
/// hardened configuration even with all defenses active.
#[test]
fn hardened_campus_survives_a_full_workday() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 0xDA7);
    let mut rng = Drbg::new(0xDA8);

    let mut total_commands = 0;
    for morning in 0..3u64 {
        for (user, pw) in [("pat", "correct-horse-battery"), ("sam", "wombat7")] {
            let mut tgt = login(
                &mut net,
                &config,
                realm.user_ep(user),
                realm.kdc_ep,
                &realm.user(user),
                LoginInput::Password(pw),
                &mut rng,
            )
            .expect("morning login");

            // Mid-day renewal keeps the credential fresh.
            net.advance(SimDuration::from_secs(3600));
            tgt = renew_tgt(&mut net, &config, realm.user_ep(user), realm.kdc_ep, &tgt, &mut rng)
                .expect("renewal");

            for service in ["files", "mail", "backup", "echo"] {
                let st = get_service_ticket(
                    &mut net,
                    &config,
                    realm.user_ep(user),
                    realm.kdc_ep,
                    &tgt,
                    &realm.service(service),
                    TgsParams::default(),
                    &mut rng,
                )
                .expect("service ticket");
                let mut conn = connect_app(
                    &mut net,
                    &config,
                    realm.user_ep(user),
                    realm.service_ep(service),
                    &st,
                    &mut rng,
                )
                .expect("session");
                for i in 0..3 {
                    let cmd = match service {
                        "files" => format!("PUT d{morning}-{i}.txt content {i}"),
                        "mail" => format!("SEND {user} daily note {i}"),
                        "backup" => format!("ARCHIVE d{morning}-{i}.txt v{i}"),
                        _ => format!("ping {i}"),
                    };
                    conn.request(&mut net, cmd.as_bytes(), &mut rng).expect("command");
                    total_commands += 1;
                }
            }
        }
        net.advance(SimDuration::from_secs(18 * 3600));
    }
    assert_eq!(total_commands, 3 * 2 * 4 * 3);

    // The KDC audit log saw every issuance.
    let issued = realm.with_kdc(&mut net, |kdc| kdc.issued.len());
    assert!(issued >= 3 * 2 * (1 + 1 + 4), "issued = {issued}");
}

/// The adversary throws the entire arsenal at both deployments.
#[test]
fn campaign_draft3_falls_hardened_stands() {
    let run = |config: &ProtocolConfig| -> Vec<AttackReport> {
        all_attacks().iter().map(|a| a.run(config, 0xCA41)).collect()
    };

    let d3 = run(&ProtocolConfig::v5_draft3());
    let hardened = run(&ProtocolConfig::hardened());

    let d3_breaches = d3.iter().filter(|r| r.succeeded).count();
    let hard_breaches: Vec<&AttackReport> = hardened.iter().filter(|r| r.succeeded).collect();

    assert!(d3_breaches >= 10, "draft3 should fall broadly, got {d3_breaches} breaches");
    assert!(
        hard_breaches.is_empty(),
        "hardened must stand: {:?}",
        hard_breaches.iter().map(|r| (r.id, &r.evidence)).collect::<Vec<_>>()
    );
}

/// Mixed-era interop sanity: a hardened KDC deployment is internally
/// consistent even when time jumps around (clock discipline).
#[test]
fn time_jumps_do_not_break_fresh_logins() {
    let config = ProtocolConfig::hardened();
    let mut net = Network::new();
    net.advance(SimDuration::from_secs(1_000_000));
    let realm = standard_campus(&mut net, &config, 0xF1);
    let mut rng = Drbg::new(0xF2);

    for jump_hours in [0u64, 1, 12, 48] {
        net.advance(SimDuration::from_secs(jump_hours * 3600));
        let tgt = login(
            &mut net,
            &config,
            realm.user_ep("pat"),
            realm.kdc_ep,
            &realm.user("pat"),
            LoginInput::Password("correct-horse-battery"),
            &mut rng,
        )
        .expect("login after time jump");
        assert!(tgt.end_time > net.now().0);
    }
}
