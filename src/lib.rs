//! # kerberos-limits
//!
//! A full reproduction of Steven M. Bellovin & Michael Merritt,
//! *Limitations of the Kerberos Authentication System* (USENIX Winter
//! 1991): Kerberos V4 and the V5-Draft-3 mechanisms the paper analyzes,
//! every attack it describes, and every protocol change it recommends —
//! all running over a deterministic simulated network whose adversary has
//! the full powers the paper assumes.
//!
//! This crate re-exports the workspace members:
//!
//! - [`crypto`] — DES, MD4, CRC-32, bignum/DH, discrete-log attackers.
//! - [`net`] — the discrete-event network simulator and adversary tap.
//! - [`krb`] — the Kerberos protocol itself, with switchable hardening.
//! - [`hw`] — the proposed cryptographic hardware (encryption unit,
//!   keystore, handheld authenticator).
//! - [`atk`] — the executable attack library and the attack/defense
//!   matrix.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced results.

pub use attacks as atk;
pub use hardware as hw;
pub use kerberos as krb;
pub use krb_crypto as crypto;
pub use simnet as net;
